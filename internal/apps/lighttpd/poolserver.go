package lighttpd

// PoolServer routes lighttpd's concurrent request path through the
// HotCalls fabric (core.CallPool) — the real-concurrency counterpart of
// the simulated Server above.  Each client connection owns one fabric
// shard and a ring of request/response buffers; the call word packs the
// buffer slot and the raw request length into a typed uint64, so the
// submit/complete path allocates nothing in the fabric.  The document
// root is immutable after construction, so responders serve it with no
// locking at all — the read-mostly best case for scaling responders.

import (
	"fmt"
	"strings"

	"hotcalls/internal/core"
	"hotcalls/internal/epc"
	"hotcalls/internal/epcstat"
	"hotcalls/internal/flight"
	"hotcalls/internal/incident"
	"hotcalls/internal/monitor"
	"hotcalls/internal/telemetry"
	"hotcalls/internal/whatif"
)

// opServeHTTP is the single fabric call table entry: serve one raw
// HTTP/1.0 request.
const opServeHTTP core.CallID = 0

// connWindow is the per-connection buffer ring depth.
const connWindow = 16

// respCap holds a response head plus the 20 KB page.
const respCap = PageSize + 512

// PoolServer is lighttpd over the fabric: a CallPool whose one table
// entry parses and answers HTTP requests against an immutable docroot.
type PoolServer struct {
	pool    *core.CallPool
	docroot map[string][]byte
	conns   []*PoolConn

	reg    *telemetry.Registry
	mon    *monitor.Monitor
	cap    *incident.Capturer
	whatIf *whatif.Observatory

	// EPC paging model (EnableEPC): every served document touches the
	// pages its body spans, owner-tagged by connection.
	epcMgr  *epc.Manager
	epcStat *epcstat.Collector

	// Flight callsites per request method (zero — unlabelled — until
	// SetFlight registers them).
	csGet, csHead flight.Callsite
}

// NewPoolServer builds a fabric-routed server for up to conns client
// connections.  The docroot gets the paper's single 20 KB page at
// /index.html; AddDocument extends it before Start.  opts tunes the
// underlying CallPool; its Shards field is overridden.
func NewPoolServer(conns int, opts core.PoolOptions) *PoolServer {
	s := &PoolServer{docroot: make(map[string][]byte)}
	page := make([]byte, PageSize)
	for i := range page {
		page[i] = byte('a' + i%26)
	}
	s.docroot["/index.html"] = page

	opts.Shards = conns
	s.conns = make([]*PoolConn, conns)
	s.pool = core.NewCallPool([]core.PoolFunc{s.serve}, opts)
	for i := range s.conns {
		c := &PoolConn{s: s, req: s.pool.Requester()}
		for j := range c.bufs {
			c.bufs[j].req = make([]byte, readCap)
			c.bufs[j].resp = make([]byte, respCap)
		}
		s.conns[i] = c
	}
	return s
}

// AddDocument installs a document before Start.  The docroot must not
// change once responders are running — its immutability is what makes
// the serve path lock-free.
func (s *PoolServer) AddDocument(path string, body []byte) {
	s.docroot[path] = append([]byte(nil), body...)
}

// SetTelemetry attaches the fabric's registry handles.  Call before
// Start.
func (s *PoolServer) SetTelemetry(reg *telemetry.Registry) {
	s.reg = reg
	s.pool.SetTelemetry(reg)
}

// SetFlight attaches the flight recorder to the fabric and registers
// the per-method callsites.  Call before Start.
func (s *PoolServer) SetFlight(rec *flight.Recorder) {
	s.pool.SetFlight(rec)
	s.csGet = rec.Callsite("http.get")
	s.csHead = rec.Callsite("http.head")
}

// callsiteFor maps a raw request line to its flight callsite with one
// prefix check — full parsing stays on the responder side.
func (s *PoolServer) callsiteFor(raw string) flight.Callsite {
	if strings.HasPrefix(raw, "HEAD ") {
		return s.csHead
	}
	return s.csGet
}

// enclavePageSpan sizes the modeled enclave heap in multiples of the
// EPC capacity: document paths hash across a region 16x the EPC, so
// residency pressure tracks the distinct pages traffic touches.
const enclavePageSpan = 16

// EnableEPC attaches a simulated EPC of the given capacity (bytes;
// <= one page selects epc.DefaultCapacityBytes) plus its pressure
// observatory: every served document then touches the pages its body
// spans, owner-tagged by client connection.  Call after SetTelemetry
// and before EnableMonitor/DebugMux; idempotent.
func (s *PoolServer) EnableEPC(capacityBytes int) *epcstat.Collector {
	if s.epcStat == nil {
		if capacityBytes <= epc.PageSize {
			capacityBytes = epc.DefaultCapacityBytes
		}
		var sealKey [16]byte
		copy(sealKey[:], "www-epc-paging-k")
		s.epcMgr = epc.NewManager(capacityBytes, sealKey)
		if s.reg != nil {
			s.epcMgr.SetTelemetry(s.reg)
		}
		s.epcStat = epcstat.New(epcstat.Options{})
		s.epcStat.Attach(s.epcMgr)
		for i := range s.conns {
			s.epcStat.SetLabel(epc.OwnerID(i+1), fmt.Sprintf("conn%d", i))
		}
	}
	return s.epcStat
}

// EPCManager exposes the simulated EPC (nil until EnableEPC).
func (s *PoolServer) EPCManager() *epc.Manager { return s.epcMgr }

// fnv64 is FNV-1a over the document path.
func fnv64(key string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return h
}

// touchEPC charges the paging cost of serving one document: the pages
// its body spans (at least one for the head), owner-tagged by the
// submitting connection.  No-op until EnableEPC.
func (s *PoolServer) touchEPC(requester int, path string, bodyLen int) {
	if s.epcMgr == nil {
		return
	}
	span := uint64(enclavePageSpan * s.epcMgr.CapacityPages())
	base := fnv64(path) % span
	pages := uint64(bodyLen+epc.PageSize-1) / epc.PageSize
	if pages == 0 {
		pages = 1
	}
	owner := epc.OwnerID(requester + 1)
	for p := uint64(0); p < pages; p++ {
		s.epcMgr.TouchAs(owner, (base+p)%span)
	}
}

// EnableWhatIf attaches the causal what-if observatory: the shadow
// router scores every monitor interval's per-method traffic against
// the three routing policies (both methods are declared pooled — that
// is how PoolServer actually routes), /debug/whatif serves the report,
// and the routing-regret monitor rule flags methods whose traffic
// outgrew the static choice.  A zero params selects
// whatif.DefaultCostParams.  Call after SetFlight and before
// EnableMonitor/DebugMux; idempotent.
func (s *PoolServer) EnableWhatIf(params whatif.CostParams) *whatif.Observatory {
	if s.whatIf == nil {
		s.whatIf = whatif.NewObservatory(params)
		r := s.whatIf.Router()
		r.DeclareDefault(whatif.PolicyPooled)
		r.Declare("http.get", whatif.PolicyPooled)
		r.Declare("http.head", whatif.PolicyPooled)
	}
	return s.whatIf
}

// WhatIf exposes the what-if observatory (nil until EnableWhatIf).
func (s *PoolServer) WhatIf() *whatif.Observatory { return s.whatIf }

// EnableMonitor attaches a health monitor over the fabric's registry,
// with the flight recorder (when attached) feeding the callsite-scoped
// rules, the EPC observatory (when enabled) feeding the EPC rules, and
// the what-if observatory (when enabled) feeding the routing-regret
// rule.  Idempotent: repeat calls return the same monitor.
func (s *PoolServer) EnableMonitor(opts monitor.Options) *monitor.Monitor {
	if s.mon == nil {
		if opts.Flight == nil {
			opts.Flight = s.pool.Flight()
		}
		if opts.EPC == nil {
			opts.EPC = s.epcStat
		}
		if opts.WhatIf == nil {
			opts.WhatIf = s.whatIf
		}
		s.mon = monitor.New(s.reg, opts)
	}
	return s.mon
}

// EnableIncidents attaches an incident capturer to the monitor
// (enabling the monitor with defaults if needed): warning/critical rule
// transitions freeze self-contained postmortem bundles, served at
// /debug/incidents by DebugMux.  The fabric's registry is snapshotted
// into each bundle unless opts names another.  Idempotent: repeat calls
// return the same capturer.
func (s *PoolServer) EnableIncidents(opts incident.Options) *incident.Capturer {
	if s.cap == nil {
		if opts.Registry == nil {
			opts.Registry = s.reg
		}
		s.cap = incident.New(s.EnableMonitor(monitor.Options{}), opts)
		s.cap.Attach()
	}
	return s.cap
}

// DebugMux serves the fabric's observability surface: /metrics, a
// /debug/ index listing every endpoint, /debug/health, /debug/monitor,
// /debug/incidents, and — per enabled collector — /debug/flight,
// /debug/epc, and /debug/whatif.
func (s *PoolServer) DebugMux() *monitor.DebugMux {
	mux := monitor.Mux(s.reg, s.EnableMonitor(monitor.Options{}))
	mux.HandleEntry("/debug/incidents", "frozen postmortem bundles (rule transitions)",
		incident.Handler(s.EnableIncidents(incident.Options{})))
	return mux
}

// Pool exposes the underlying CallPool (responder bounds, stats).
func (s *PoolServer) Pool() *core.CallPool { return s.pool }

// Start launches the adaptive responder pool.
func (s *PoolServer) Start() { s.pool.Start() }

// Stop shuts the fabric down.
func (s *PoolServer) Stop() { s.pool.Stop() }

// Conn returns connection i's handle.  Each connection must be driven
// from one goroutine at a time.
func (s *PoolServer) Conn(i int) *PoolConn { return s.conns[i] }

func packData(slot, n int) uint64 { return uint64(slot)<<32 | uint64(uint32(n)) }

func unpackData(d uint64) (slot, n int) { return int(d >> 32), int(uint32(d)) }

// serve is the enclave-side handler: parse the raw request out of the
// submitting connection's slot buffer, look the path up in the docroot,
// and write head+body into the paired response buffer.  The returned
// word is the response length.  Malformed requests get a real 400, not
// an error: a web server answers bad clients on the wire.
func (s *PoolServer) serve(requester int, data uint64) uint64 {
	slot, n := unpackData(data)
	b := &s.conns[requester].bufs[slot]
	status, body := 200, []byte(nil)
	req, err := ParseRequest(string(b.req[:n]))
	if err != nil {
		status = 400
	} else if doc, ok := s.docroot[req.Path]; !ok {
		status = 404
		s.touchEPC(requester, req.Path, 0)
	} else {
		body = doc
		s.touchEPC(requester, req.Path, len(body))
	}
	head := ResponseHead(status, len(body))
	p := copy(b.resp, head)
	if req != nil && req.Method == "HEAD" {
		return uint64(p)
	}
	p += copy(b.resp[p:], body)
	return uint64(p)
}

// connBuf is one in-flight request's buffer pair.
type connBuf struct {
	req  []byte
	resp []byte
}

// PoolConn is one client connection: a fabric requester plus its buffer
// ring.  Submissions complete in FIFO order per connection; collect
// oldest-first.
type PoolConn struct {
	s        *PoolServer
	req      *core.Requester
	bufs     [connWindow]connBuf
	next     int
	inflight int
}

// PendingResponse is an in-flight request's handle.
type PendingResponse struct {
	c    *PoolConn
	pd   *core.PoolPending
	slot int
}

// Submit copies the raw request into the next ring buffer and posts it
// to the fabric.  It fails when the connection's window is full —
// collect the oldest PendingResponse first.
func (c *PoolConn) Submit(raw string) (PendingResponse, error) {
	if c.inflight == connWindow {
		return PendingResponse{}, fmt.Errorf("lighttpd: connection window full (%d in flight)", c.inflight)
	}
	if len(raw) > readCap {
		return PendingResponse{}, ErrBadRequest
	}
	slot := c.next
	n := copy(c.bufs[slot].req, raw)
	pd, err := c.req.SubmitAt(c.s.callsiteFor(raw), opServeHTTP, packData(slot, n))
	if err != nil {
		return PendingResponse{}, err
	}
	c.next = (c.next + 1) % connWindow
	c.inflight++
	return PendingResponse{c: c, pd: pd, slot: slot}, nil
}

// Wait blocks until the response bytes are ready.  The returned slice
// aliases the connection's slot buffer: consume it before the slot comes
// around again (connWindow submissions later).
func (pr PendingResponse) Wait() ([]byte, error) {
	ret, err := pr.pd.Wait()
	pr.c.inflight--
	if err != nil {
		return nil, err
	}
	return pr.c.bufs[pr.slot].resp[:ret], nil
}

// Do is the synchronous path: one raw request through the fabric,
// blocking for its response bytes.
func (c *PoolConn) Do(raw string) ([]byte, error) {
	pr, err := c.Submit(raw)
	if err != nil {
		return nil, err
	}
	return pr.Wait()
}

package lighttpd

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"hotcalls/internal/apps/porting"
	"hotcalls/internal/sim"
)

func TestParseRequest(t *testing.T) {
	req, err := ParseRequest("GET /index.html HTTP/1.0\r\nHost: x\r\nUser-Agent: http_load\r\n\r\n")
	if err != nil {
		t.Fatal(err)
	}
	if req.Method != "GET" || req.Path != "/index.html" || req.Version != "HTTP/1.0" {
		t.Fatalf("req = %+v", req)
	}
	if req.Headers["host"] != "x" || req.Headers["user-agent"] != "http_load" {
		t.Fatalf("headers = %v", req.Headers)
	}
}

func TestParseRequestErrors(t *testing.T) {
	if _, err := ParseRequest("garbage"); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("err = %v", err)
	}
	if _, err := ParseRequest("POST / HTTP/1.0\r\n\r\n"); !errors.Is(err, ErrBadMethod) {
		t.Fatalf("err = %v", err)
	}
	if _, err := ParseRequest("GET / HTTP/1.0\r\nbadheader\r\n\r\n"); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("err = %v", err)
	}
}

func TestParseRequestNeverPanics(t *testing.T) {
	f := func(raw string) bool {
		ParseRequest(raw)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestResponseHead(t *testing.T) {
	head := ResponseHead(200, 20480)
	if !strings.HasPrefix(head, "HTTP/1.0 200 OK\r\n") || !strings.Contains(head, "Content-Length: 20480") {
		t.Fatalf("head = %q", head)
	}
	if !strings.Contains(ResponseHead(404, 0), "404 Not Found") {
		t.Fatal("404 head wrong")
	}
}

func TestServerServesPage(t *testing.T) {
	s := NewServer(porting.Native)
	client := s.InjectRequest("/")
	var clk sim.Clock
	s.ServeOne(&clk)
	// First RX chunk is the header block, second the sendfile body.
	head, ok := s.App.Kernel.TakeRX(client)
	if !ok {
		t.Fatal("no response headers")
	}
	if !strings.HasPrefix(string(head), "HTTP/1.0 200 OK") {
		t.Fatalf("head = %q", head[:40])
	}
	body, ok := s.App.Kernel.TakeRX(client)
	if !ok {
		t.Fatal("no response body")
	}
	if len(body) != PageSize {
		t.Fatalf("body = %d bytes, want %d", len(body), PageSize)
	}
	if s.Served() != 1 {
		t.Fatalf("served = %d", s.Served())
	}
}

func TestServerWorksInAllModes(t *testing.T) {
	for _, mode := range porting.Modes {
		t.Run(mode.String(), func(t *testing.T) {
			s := NewServer(mode)
			var clk sim.Clock
			for i := 0; i < 10; i++ {
				client := s.InjectRequest("/")
				s.ServeOne(&clk)
				if _, ok := s.App.Kernel.TakeRX(client); !ok {
					t.Fatal("no response")
				}
			}
			if s.Served() != 10 {
				t.Fatalf("served = %d", s.Served())
			}
		})
	}
}

func TestTable2CallMix(t *testing.T) {
	// Table 2 at 12.1k requests/s: read 49k (4.05/req); fcntl,
	// epoll_ctl, close, setsockopt, fxstat64 25k (2.07/req); inet_ntop,
	// accept, inet_addr, ioctl, open64_2, sendfile64, shutdown, writev
	// 12k (1/req).  Total ~270k calls/s = 22.3/req.
	s := NewServer(porting.SGX)
	var clk sim.Clock
	s.App.ResetCounters()
	const n = 1000
	for i := 0; i < n; i++ {
		client := s.InjectRequest("/")
		s.ServeOne(&clk)
		s.App.Kernel.TakeRX(client)
		s.App.Kernel.TakeRX(client)
	}
	c := s.App.Counters()
	ratios := map[string]float64{
		"ocall_read":       4.05,
		"ocall_fcntl":      2.07,
		"ocall_epoll_ctl":  2.07,
		"ocall_close":      2.07,
		"ocall_setsockopt": 2.07,
		"ocall_fxstat64":   2.07,
		"ocall_inet_ntop":  1, "ocall_accept": 1, "ocall_inet_addr": 1,
		"ocall_ioctl": 1, "ocall_open64": 1, "ocall_sendfile64": 1,
		"ocall_shutdown": 1, "ocall_writev": 1,
	}
	var total uint64
	for name, want := range ratios {
		got := float64(c[name]) / n
		total += c[name]
		if got < want*0.9 || got > want*1.1 {
			t.Errorf("%s = %.2f per request, want %.2f", name, got, want)
		}
	}
	if perReq := float64(total) / n; perReq < 20.5 || perReq > 24.5 {
		t.Errorf("total ocalls per request = %.2f, want ~22.3", perReq)
	}
}

// TestNativeThroughputMatch pins the calibration point: native lighttpd
// served 53,400 pages/second at 1.52 ms (Section 6.4).
func TestNativeThroughputMatch(t *testing.T) {
	m := Run(porting.Native, 0.05)
	t.Logf("native: %.0f req/s, %.2f ms (paper: 53,400 req/s, 1.52 ms)", m.Throughput, m.AvgLatency*1e3)
	if m.Throughput < 53400*0.95 || m.Throughput > 53400*1.05 {
		t.Errorf("native throughput = %.0f, want 53,400 +/- 5%%", m.Throughput)
	}
}

// TestSGXThroughputMatch pins the second calibration point: 12,100
// requests/second at 8.25 ms for the unoptimized port.
func TestSGXThroughputMatch(t *testing.T) {
	m := Run(porting.SGX, 0.05)
	t.Logf("sgx: %.0f req/s, %.2f ms (paper: 12,100 req/s, 8.25 ms)", m.Throughput, m.AvgLatency*1e3)
	if m.Throughput < 12100*0.88 || m.Throughput > 12100*1.12 {
		t.Errorf("sgx throughput = %.0f, want 12,100 +/- 12%%", m.Throughput)
	}
}

// TestHotCallsPrediction checks the predicted points: 40,400 req/s with
// HotCalls and 44,800 req/s with No-Redundant-Zeroing.
func TestHotCallsPrediction(t *testing.T) {
	hc := Run(porting.HotCalls, 0.05)
	nrz := Run(porting.HotCallsNRZ, 0.05)
	t.Logf("hotcalls: %.0f req/s (paper: 40,400); +NRZ: %.0f (paper: 44,800)", hc.Throughput, nrz.Throughput)
	if hc.Throughput < 40400*0.8 || hc.Throughput > 40400*1.2 {
		t.Errorf("hotcalls = %.0f, want 40,400 +/- 20%%", hc.Throughput)
	}
	if nrz.Throughput <= hc.Throughput {
		t.Errorf("NRZ (%.0f) must beat HotCalls (%.0f)", nrz.Throughput, hc.Throughput)
	}
	if nrz.Throughput < 44800*0.8 || nrz.Throughput > 44800*1.2 {
		t.Errorf("nrz = %.0f, want 44,800 +/- 20%%", nrz.Throughput)
	}
}

func TestServer404ForMissingDocument(t *testing.T) {
	s := NewServer(porting.SGX)
	client := s.InjectRequest("/missing.html")
	var clk sim.Clock
	s.ServeOne(&clk)
	head, ok := s.App.Kernel.TakeRX(client)
	if !ok {
		t.Fatal("no response")
	}
	if !strings.HasPrefix(string(head), "HTTP/1.0 404 Not Found") {
		t.Fatalf("head = %q", head[:40])
	}
	if _, ok := s.App.Kernel.TakeRX(client); ok {
		t.Fatal("404 response should carry no body")
	}
}

func TestServerServesByPath(t *testing.T) {
	s := NewServer(porting.HotCallsNRZ)
	client := s.InjectRequest("/about.html")
	var clk sim.Clock
	s.ServeOne(&clk)
	head, _ := s.App.Kernel.TakeRX(client)
	if !strings.HasPrefix(string(head), "HTTP/1.0 200 OK") {
		t.Fatalf("head = %q", head)
	}
	body, ok := s.App.Kernel.TakeRX(client)
	if !ok || !strings.Contains(string(body), "lighttpd-sim") {
		t.Fatalf("body = %q", body)
	}
}

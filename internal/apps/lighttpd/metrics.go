package lighttpd

import (
	"net/http"

	"hotcalls/internal/telemetry"
)

// App-level metric names exported beside the standard boundary set.
const (
	MetricRequests     = "lighttpd_requests_total"
	MetricRequestCycle = "lighttpd_request_cycles"
	MetricCrossings    = "lighttpd_request_boundary_crossings"
)

// serverTel caches the server's telemetry handles; all nil (no-op) until
// EnableTelemetry attaches a registry.
type serverTel struct {
	requests  *telemetry.Counter
	reqCycles *telemetry.Histogram
	crossings *telemetry.Histogram

	// Cached boundary counters, read before/after each request to
	// attribute crossings per request (the Table 2 instrumentation,
	// live instead of post-hoc).
	ecalls, ocalls, hotEcalls, hotOcalls *telemetry.Counter
}

// boundaryCount sums every boundary-crossing counter the server's stack
// can increment.  Zero when telemetry is detached (nil handles load 0).
func (t *serverTel) boundaryCount() uint64 {
	return t.ecalls.Load() + t.ocalls.Load() + t.hotEcalls.Load() + t.hotOcalls.Load()
}

// EnableTelemetry attaches the observability registry to the whole server
// stack (platform, SDK runtime, HotCalls channel) and registers the
// per-request metrics: request count, request cycle latency, and the
// boundary-crossings-per-request histogram.
func (s *Server) EnableTelemetry(reg *telemetry.Registry) {
	telemetry.RegisterStandard(reg)
	s.App.SetTelemetry(reg)
	s.tel = serverTel{
		requests:  reg.Counter(MetricRequests),
		reqCycles: reg.Histogram(MetricRequestCycle),
		crossings: reg.Histogram(MetricCrossings),
		ecalls:    reg.Counter(telemetry.MetricEcalls),
		ocalls:    reg.Counter(telemetry.MetricOcalls),
		hotEcalls: reg.Counter(telemetry.MetricHotECalls),
		hotOcalls: reg.Counter(telemetry.MetricHotOCalls),
	}
}

// MetricsHandler serves the attached registry in Prometheus text format
// (the /metrics endpoint).  Usable even before EnableTelemetry: a nil
// registry serves an empty exposition.
func (s *Server) MetricsHandler() http.Handler {
	return telemetry.Handler(s.App.Tel)
}

package openvpn

// PoolServer routes the openVPN data path through the HotCalls fabric's
// zero-copy rings (core.PayloadRing) — the real-concurrency counterpart
// of the simulated Server above, and the fabric's first bulk-payload
// port.  Each client connection owns one fabric shard plus a slab ring;
// the tunnel pipeline is recvfrom→open→seal→sendto with no intermediate
// copies: the sealed frame lands in a slab (the "NIC DMA"), the call
// carries {slab, offset, length} descriptors — the 20-byte tunnel header
// and the ciphertext body travel as two scatter-gather segments — and
// the enclave-side handler authenticates, decrypts, and re-seals the
// bytes in place.  The streaming path posts whole windows with SubmitV,
// so a burst of datagrams pays one responder wakeup.

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"hotcalls/internal/core"
	"hotcalls/internal/epc"
	"hotcalls/internal/epcstat"
	"hotcalls/internal/flight"
	"hotcalls/internal/incident"
	"hotcalls/internal/monitor"
	"hotcalls/internal/telemetry"
	"hotcalls/internal/whatif"
)

// opTunnel is the single vec-table entry: relay one tunnel datagram
// (authenticate + decrypt + re-seal, all in place in the slab).
const opTunnel core.CallID = 0

// vpnWindow is the per-connection streaming window: the SubmitV batch
// size and the number of slabs a connection keeps in flight.
const vpnWindow = 16

// slabFrameCap is the default slab size: one MTU frame plus tunnel
// overhead, rounded to a power of two.
const slabFrameCap = 2048

// ErrWindowFull reports a submit with every slab attached to an
// in-flight call; reap completions first.
var ErrWindowFull = errors.New("openvpn: connection window full (no free slab)")

// replayWindow is a reorder-tolerant packet-ID filter (openVPN's UDP
// sliding window): IDs up to 63 behind the highest seen are accepted
// once each.  The fabric needs the tolerance because concurrent
// responders may execute a window's calls slightly out of order.
type replayWindow struct {
	highest uint32
	mask    uint64 // bit i set = (highest - i) already seen
}

func (w *replayWindow) accept(id uint32) bool {
	if id == 0 {
		return false
	}
	if id > w.highest {
		shift := id - w.highest
		if shift >= 64 {
			w.mask = 0
		} else {
			w.mask <<= shift
		}
		w.mask |= 1
		w.highest = id
		return true
	}
	diff := w.highest - id
	if diff >= 64 || w.mask&(1<<diff) != 0 {
		return false
	}
	w.mask |= 1 << diff
	return true
}

// segMac computes the tunnel MAC over a scatter-gather frame — the
// packet-ID header and the ciphertext body as two writes, no coalescing
// copy (contrast Cipher.mac, which takes one contiguous frame).
func segMac(c *Cipher, hdr, body []byte) [macSize]byte {
	h := hmac.New(sha256.New, c.macKey[:])
	h.Write(hdr)
	h.Write(body)
	var sum [sha256.Size]byte
	var out [macSize]byte
	copy(out[:], h.Sum(sum[:0]))
	return out
}

// tunnelState is one connection's crypto context: both direction keys
// and the receive replay window, behind the per-connection lock the
// responders serialize on (openVPN's per-client context lock).
type tunnelState struct {
	mu    sync.Mutex
	rx    *Cipher // client -> server
	tx    *Cipher // server -> client
	rxWin replayWindow
	_     [tunnelPad]byte
}

// tunnelPad keeps adjacent connections' locks off one coherence line.
const tunnelPad = 64

// connCiphers derives connection i's deterministic direction keys (a
// deployment would run the TLS control channel instead).
func connCiphers(i int) (rx, tx *Cipher) {
	var ck [16]byte
	var mk [32]byte
	copy(ck[:], "tunnel-cipher-k!")
	copy(mk[:], "tunnel-hmac-key-tunnel-hmac-key-")
	ck[15] = byte(i)
	mk[31] = byte(i)
	rx = NewCipher(ck, mk)
	ck[14] ^= 0xa5 // distinct key per direction
	tx = NewCipher(ck, mk)
	return rx, tx
}

// PoolServer is the openVPN relay over the fabric: a CallPool whose one
// vec-table entry relays tunnel datagrams in place in the payload rings.
type PoolServer struct {
	pool    *core.CallPool
	conns   []*PoolConn
	tunnels []*tunnelState

	reg    *telemetry.Registry
	mon    *monitor.Monitor
	cap    *incident.Capturer
	whatIf *whatif.Observatory

	// EPC paging model (EnableEPC): the handler touches the enclave
	// pages backing each slab window it processes, owner-tagged by
	// connection, so the observatory attributes ring-payload pressure
	// per client.
	epcMgr  *epc.Manager
	epcStat *epcstat.Collector

	csForward, csStream flight.Callsite
}

// NewPoolServer builds a fabric-routed tunnel relay for up to conns
// client connections.  opts tunes the underlying CallPool; Shards is
// overridden to the connection count, and the zero-copy rings default to
// 2x the streaming window of MTU-sized slabs per connection.
func NewPoolServer(conns int, opts core.PoolOptions) *PoolServer {
	s := &PoolServer{}
	opts.Shards = conns
	if opts.RingSlabs == 0 {
		opts.RingSlabs = 2 * vpnWindow
	}
	if opts.RingSlabBytes == 0 {
		opts.RingSlabBytes = slabFrameCap
	}
	s.pool = core.NewCallPool([]core.PoolFunc{
		// The tunnel has no scalar-only path; a descriptor-less call is
		// malformed by construction.
		func(int, uint64) uint64 { return ^uint64(0) },
	}, opts)
	s.pool.SetVecTable([]core.PoolVecFunc{s.tunnel})
	s.conns = make([]*PoolConn, conns)
	s.tunnels = make([]*tunnelState, conns)
	for i := range s.conns {
		rx, tx := connCiphers(i)
		s.tunnels[i] = &tunnelState{rx: rx, tx: tx}
		// The remote peer's view of the same keys: it seals with the
		// rx direction and verifies the relay's output with tx.
		peerSeal, _ := connCiphers(i)
		_, peerVerify := connCiphers(i)
		c := &PoolConn{s: s, idx: i, req: s.pool.Requester(),
			peerSeal: peerSeal, peerVerify: peerVerify}
		c.ring = c.req.Ring()
		c.ring.SetTouch(s.ringTouch(i))
		s.conns[i] = c
	}
	return s
}

// SetTelemetry attaches the fabric's registry handles.  Call before
// Start.
func (s *PoolServer) SetTelemetry(reg *telemetry.Registry) {
	s.reg = reg
	s.pool.SetTelemetry(reg)
}

// SetFlight attaches the flight recorder to the fabric and registers the
// per-path callsites: the synchronous forward path and the vectored
// streaming path show as separate rows, each with its payload byte
// volume (flight_callsite_bytes_total).  Call before Start.
func (s *PoolServer) SetFlight(rec *flight.Recorder) {
	s.pool.SetFlight(rec)
	s.csForward = rec.Callsite("vpn.forward")
	s.csStream = rec.Callsite("vpn.stream")
}

// enclavePageSpan sizes the modeled enclave heap in multiples of the EPC
// capacity, as the memcached port does.
const enclavePageSpan = 16

// EnableEPC attaches a simulated EPC of the given capacity (bytes;
// <= one page selects epc.DefaultCapacityBytes) plus its pressure
// observatory.  The tunnel handler then touches the pages behind every
// slab window it relays, owner-tagged by connection, so /debug/epc and
// the EPC monitor rules attribute ring-payload paging per client.  Call
// after SetTelemetry and before EnableMonitor/DebugMux; idempotent.
func (s *PoolServer) EnableEPC(capacityBytes int) *epcstat.Collector {
	if s.epcStat == nil {
		if capacityBytes <= epc.PageSize {
			capacityBytes = epc.DefaultCapacityBytes
		}
		var sealKey [16]byte
		copy(sealKey[:], "vpn-epc-zc-rings")
		s.epcMgr = epc.NewManager(capacityBytes, sealKey)
		if s.reg != nil {
			s.epcMgr.SetTelemetry(s.reg)
		}
		s.epcStat = epcstat.New(epcstat.Options{})
		s.epcStat.Attach(s.epcMgr)
		for i := range s.conns {
			s.epcStat.SetLabel(epc.OwnerID(i+1), fmt.Sprintf("conn%d", i))
		}
	}
	return s.epcStat
}

// EPCManager exposes the simulated EPC (nil until EnableEPC).
func (s *PoolServer) EPCManager() *epc.Manager { return s.epcMgr }

// ringTouch builds connection i's slab-page attribution hook
// (core.PayloadRing.SetTouch): a touched slab window maps to simulated
// enclave pages charged to the connection's owner ID.  No-op until
// EnableEPC.
func (s *PoolServer) ringTouch(conn int) func(slab uint32, off, n int) {
	return func(slab uint32, off, n int) {
		if s.epcMgr == nil || n == 0 {
			return
		}
		span := uint64(enclavePageSpan * s.epcMgr.CapacityPages())
		base := (uint64(conn+1)*0x9e3779b97f4a7c15 + uint64(slab)*8 +
			uint64(off)/epc.PageSize) % span
		pages := uint64(n+epc.PageSize-1) / epc.PageSize
		owner := epc.OwnerID(conn + 1)
		for p := uint64(0); p < pages; p++ {
			s.epcMgr.TouchAs(owner, (base+p)%span)
		}
	}
}

// EnableWhatIf attaches the causal what-if observatory; both tunnel
// callsites are declared pooled (that is how PoolServer routes), and
// with the flight recorder's byte volume attached the router's cost
// model now separates per-call from per-byte cycles.  Call after
// SetFlight and before EnableMonitor/DebugMux; idempotent.
func (s *PoolServer) EnableWhatIf(params whatif.CostParams) *whatif.Observatory {
	if s.whatIf == nil {
		s.whatIf = whatif.NewObservatory(params)
		r := s.whatIf.Router()
		r.DeclareDefault(whatif.PolicyPooled)
		r.Declare("vpn.forward", whatif.PolicyPooled)
		r.Declare("vpn.stream", whatif.PolicyPooled)
	}
	return s.whatIf
}

// WhatIf exposes the what-if observatory (nil until EnableWhatIf).
func (s *PoolServer) WhatIf() *whatif.Observatory { return s.whatIf }

// EnableMonitor attaches a health monitor over the fabric's registry,
// wiring in whichever collectors are enabled.  Idempotent.
func (s *PoolServer) EnableMonitor(opts monitor.Options) *monitor.Monitor {
	if s.mon == nil {
		if opts.Flight == nil {
			opts.Flight = s.pool.Flight()
		}
		if opts.EPC == nil {
			opts.EPC = s.epcStat
		}
		if opts.WhatIf == nil {
			opts.WhatIf = s.whatIf
		}
		s.mon = monitor.New(s.reg, opts)
	}
	return s.mon
}

// EnableIncidents attaches an incident capturer to the monitor (enabling
// the monitor with defaults if needed).  Idempotent.
func (s *PoolServer) EnableIncidents(opts incident.Options) *incident.Capturer {
	if s.cap == nil {
		if opts.Registry == nil {
			opts.Registry = s.reg
		}
		s.cap = incident.New(s.EnableMonitor(monitor.Options{}), opts)
		s.cap.Attach()
	}
	return s.cap
}

// DebugMux serves the fabric's observability surface: /metrics, the
// /debug/ index, and — per enabled collector — /debug/flight,
// /debug/epc, /debug/whatif, and /debug/incidents.
func (s *PoolServer) DebugMux() *monitor.DebugMux {
	mux := monitor.Mux(s.reg, s.EnableMonitor(monitor.Options{}))
	mux.HandleEntry("/debug/incidents", "frozen postmortem bundles (rule transitions)",
		incident.Handler(s.EnableIncidents(incident.Options{})))
	return mux
}

// Pool exposes the underlying CallPool (responder bounds, stats).
func (s *PoolServer) Pool() *core.CallPool { return s.pool }

// Start launches the adaptive responder pool.
func (s *PoolServer) Start() { s.pool.Start() }

// Stop shuts the fabric down.
func (s *PoolServer) Stop() { s.pool.Stop() }

// Conn returns connection i's handle.  Each connection must be driven
// from one goroutine at a time.
func (s *PoolServer) Conn(i int) *PoolConn { return s.conns[i] }

// tunnel is the enclave-side vec handler: authenticate, replay-check,
// and decrypt the inbound frame in place, then re-seal it for the
// outbound direction — all in the two slab windows the descriptors
// reference, with zero copies.  Returns the outbound frame length, or
// the ^0 sentinel on a malformed or unauthentic datagram.
func (s *PoolServer) tunnel(requester int, data uint64, segs []core.Segment) uint64 {
	if len(segs) != 2 || segs[0].Len != FrameOverhead {
		return ^uint64(0)
	}
	ring := s.pool.Ring(requester)
	hdr := ring.Bytes(segs[0])
	body := ring.Bytes(segs[1])
	ring.Touch(segs[0])
	ring.Touch(segs[1])

	t := s.tunnels[requester]
	t.mu.Lock()
	defer t.mu.Unlock()

	id := binary.BigEndian.Uint32(hdr[:packetIDSize])
	want := segMac(t.rx, hdr[:packetIDSize], body)
	if !hmac.Equal(want[:], hdr[packetIDSize:FrameOverhead]) {
		return ^uint64(0)
	}
	if !t.rxWin.accept(id) {
		return ^uint64(0)
	}
	// Decrypt in place: the ciphertext window becomes the plaintext
	// window (CTR XOR permits exact aliasing).
	t.rx.stream(id).XORKeyStream(body, body)

	// Re-seal for the outbound direction in place: fresh packet ID,
	// re-encrypt, recompute the MAC into the same header window.
	oid := t.tx.nextID
	t.tx.nextID++
	binary.BigEndian.PutUint32(hdr[:packetIDSize], oid)
	t.tx.stream(oid).XORKeyStream(body, body)
	mac := segMac(t.tx, hdr[:packetIDSize], body)
	copy(hdr[packetIDSize:FrameOverhead], mac[:])
	return uint64(FrameOverhead) + uint64(len(body))
}

// PoolConn is one client connection: a fabric requester, its payload
// ring, and the remote peer's crypto contexts (the test traffic
// generator seals inbound frames and verifies relayed output).
type PoolConn struct {
	s    *PoolServer
	idx  int
	req  *core.Requester
	ring *core.PayloadRing

	peerSeal   *Cipher // peer's sealer: client -> server direction
	peerVerify *Cipher // peer's receive keys: server -> client direction
	peerWin    replayWindow

	calls [vpnWindow]core.VecCall
	segs  [vpnWindow][2]core.Segment
	slabs [vpnWindow]uint32
}

// sealInto plays the NIC: the peer's sealed frame lands directly in a
// ring slab, split into header and body descriptors.
func (c *PoolConn) sealInto(payload []byte) (slab uint32, segs [2]core.Segment, err error) {
	s, buf, ok := c.ring.Acquire()
	if !ok {
		return 0, segs, ErrWindowFull
	}
	frameLen := c.peerSeal.Seal(buf, payload)
	segs[0] = core.Segment{Slab: s, Off: 0, Len: FrameOverhead}
	segs[1] = core.Segment{Slab: s, Off: FrameOverhead, Len: uint32(frameLen - FrameOverhead)}
	return s, segs, nil
}

// verifyOut authenticates and decrypts one relayed output frame with
// the peer's receive context (reorder-tolerant: concurrent responders
// may commit a window slightly out of order) and checks the payload
// round-tripped.
func (c *PoolConn) verifyOut(frame, payload []byte) error {
	if len(frame) != FrameOverhead+len(payload) {
		return ErrShortPkt
	}
	id := binary.BigEndian.Uint32(frame[:packetIDSize])
	want := segMac(c.peerVerify, frame[:packetIDSize], frame[FrameOverhead:])
	if !hmac.Equal(want[:], frame[packetIDSize:FrameOverhead]) {
		return ErrBadMAC
	}
	if !c.peerWin.accept(id) {
		return ErrReplay
	}
	out := make([]byte, len(payload))
	c.peerVerify.stream(id).XORKeyStream(out, frame[FrameOverhead:])
	for i := range out {
		if out[i] != payload[i] {
			return fmt.Errorf("openvpn: payload corrupted at byte %d", i)
		}
	}
	return nil
}

// Forward relays one datagram synchronously: seal into a slab, one
// zero-copy scatter-gather call, verify the re-sealed output read
// straight from the slab, recycle.  Returns the outbound frame length.
func (c *PoolConn) Forward(payload []byte) (int, error) {
	slab, segs, err := c.sealInto(payload)
	if err != nil {
		return 0, err
	}
	ret, err := c.req.CallZCAt(c.s.csForward, opTunnel, 0, segs[:])
	if err != nil {
		c.ring.Release(slab)
		return 0, err
	}
	if ret == ^uint64(0) {
		c.ring.Release(slab)
		return 0, ErrBadMAC
	}
	verr := c.verifyOut(c.ring.Slab(slab)[:ret], payload)
	c.ring.Release(slab)
	if verr != nil {
		return 0, verr
	}
	return int(ret), nil
}

// Stream relays a window of datagrams with one vectored submit (single
// responder wakeup, batched tail claim), verifying every relayed frame.
// Returns how many datagrams were relayed.
func (c *PoolConn) Stream(payloads [][]byte) (int, error) {
	if len(payloads) > vpnWindow {
		payloads = payloads[:vpnWindow]
	}
	n := 0
	for _, p := range payloads {
		slab, segs, err := c.sealInto(p)
		if err != nil {
			break
		}
		c.slabs[n] = slab
		c.segs[n] = segs
		c.calls[n] = core.VecCall{ID: opTunnel, Segs: c.segs[n][:]}
		n++
	}
	if n == 0 {
		return 0, ErrWindowFull
	}
	release := func(from int) {
		for i := from; i < n; i++ {
			c.ring.Release(c.slabs[i])
		}
	}
	b, err := c.req.SubmitVAt(c.s.csStream, c.calls[:n])
	if b == nil {
		release(0)
		return 0, err
	}
	done := b.Len() // WaitAll recycles the handle; capture first
	var rets [vpnWindow]uint64
	werr := b.WaitAll(rets[:done])
	for i := 0; i < done; i++ {
		if werr == nil && rets[i] != ^uint64(0) {
			if verr := c.verifyOut(c.ring.Slab(c.slabs[i])[:rets[i]], payloads[i]); verr != nil && werr == nil {
				werr = verr
			}
		} else if werr == nil {
			werr = ErrBadMAC
		}
	}
	release(0)
	if werr != nil {
		return done, werr
	}
	if err != nil {
		return done, err
	}
	return done, nil
}

// PumpSync is Pump's synchronous counterpart: the same relay traffic
// driven one datagram at a time — seal, one zero-copy call, recycle —
// with no windowing and no per-frame verification.  The streaming
// experiment interleaves it with Pump; the same-run ratio isolates what
// vectored submit buys on top of the zero-copy path.
func (c *PoolConn) PumpSync(payload []byte, count int) (uint64, error) {
	var total uint64
	for i := 0; i < count; i++ {
		slab, segs, err := c.sealInto(payload)
		if err != nil {
			return total, err
		}
		ret, err := c.req.CallZCAt(c.s.csForward, opTunnel, 0, segs[:])
		c.ring.Release(slab)
		if err != nil {
			return total, err
		}
		if ret != ^uint64(0) {
			total += ret
		}
	}
	return total, nil
}

// Pump is the measurement path (the iperf-like streaming driver): relay
// count copies of payload in full vectored windows, recycling slabs
// through the batch handles, with no per-frame verification.  Returns
// total outbound frame bytes relayed.
func (c *PoolConn) Pump(payload []byte, count int) (uint64, error) {
	var total uint64
	for count > 0 {
		n := 0
		for n < vpnWindow && n < count {
			slab, segs, err := c.sealInto(payload)
			if err != nil {
				break
			}
			c.slabs[n] = slab
			c.segs[n] = segs
			c.calls[n] = core.VecCall{ID: opTunnel, Segs: c.segs[n][:]}
			n++
		}
		if n == 0 {
			return total, ErrWindowFull
		}
		b, err := c.req.SubmitVAt(c.s.csStream, c.calls[:n])
		if b == nil {
			for i := 0; i < n; i++ {
				c.ring.Release(c.slabs[i])
			}
			return total, err
		}
		// Slabs of posted calls recycle through the batch; a partial
		// post (timeout mid-window) hands the rest back directly.
		for i := 0; i < b.Len(); i++ {
			b.RecycleSlab(c.ring, c.slabs[i])
		}
		for i := b.Len(); i < n; i++ {
			c.ring.Release(c.slabs[i])
		}
		posted := b.Len() // WaitAll recycles the handle; capture first
		var rets [vpnWindow]uint64
		if werr := b.WaitAll(rets[:posted]); werr != nil {
			return total, werr
		}
		for i := 0; i < posted; i++ {
			if rets[i] != ^uint64(0) {
				total += rets[i]
			}
		}
		count -= n
	}
	return total, nil
}

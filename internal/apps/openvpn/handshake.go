package openvpn

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"

	"hotcalls/internal/sgx"
	"hotcalls/internal/sgx/attest"
)

// This file implements the control channel the data plane depends on: the
// remote client verifies the VPN enclave through remote attestation and
// only then derives the per-session tunnel keys, so the keys exist nowhere
// outside the enclave and the client's own memory — the deployment story
// that motivates porting openVPN into SGX in the first place
// (Section 6.3: "Compromising the secret keys used by openVPN compromises
// the security of the tunnel").

// ErrAttestationFailed rejects a handshake with an unverifiable enclave.
var ErrAttestationFailed = errors.New("openvpn: peer enclave failed attestation")

// SessionKeys hold one direction pair of freshly derived tunnel keys.
type SessionKeys struct {
	ClientToServer *Cipher
	ServerToClient *Cipher
}

// deriveKeys expands a master secret and session nonce into the four
// tunnel keys with an HKDF-style HMAC expansion.
func deriveKeys(master [32]byte, nonce [16]byte) *SessionKeys {
	expand := func(label string) []byte {
		h := hmac.New(sha256.New, master[:])
		h.Write([]byte(label))
		h.Write(nonce[:])
		return h.Sum(nil)
	}
	var c2sKey, s2cKey [16]byte
	var c2sMac, s2cMac [32]byte
	copy(c2sKey[:], expand("c2s-cipher"))
	copy(s2cKey[:], expand("s2c-cipher"))
	copy(c2sMac[:], expand("c2s-mac"))
	copy(s2cMac[:], expand("s2c-mac"))
	return &SessionKeys{
		ClientToServer: NewCipher(c2sKey, c2sMac),
		ServerToClient: NewCipher(s2cKey, s2cMac),
	}
}

// Handshake is the client side of session establishment: verify the
// enclave's quote against the attestation service, check that the quoted
// identity matches the expected VPN build, and derive session keys bound
// to the quote's nonce.  Both sides must call deriveKeys with the same
// master and nonce; the master would be provisioned into the enclave over
// the attestation-established secure channel.
func Handshake(svc *attest.Service, quote *attest.Quote, expected sgx.Measurement, master [32]byte, sessionNonce [16]byte) (*SessionKeys, error) {
	if err := svc.Verify(quote); err != nil {
		return nil, errors.Join(ErrAttestationFailed, err)
	}
	if quote.Report.Measurement != expected {
		return nil, ErrAttestationFailed
	}
	// The report must bind the session nonce (anti-replay of the whole
	// handshake).
	var want [8]byte
	copy(want[:], quote.Report.Data[:8])
	if binary.LittleEndian.Uint64(want[:]) != binary.LittleEndian.Uint64(sessionNonce[:8]) {
		return nil, ErrAttestationFailed
	}
	return deriveKeys(master, sessionNonce), nil
}

// EnclaveHandshake is the server (enclave) side: produce the quote binding
// the session nonce and derive the same keys.
func EnclaveHandshake(p *sgx.Platform, e *sgx.Enclave, qe *attest.QuotingEnclave, master [32]byte, sessionNonce [16]byte) (*attest.Quote, *SessionKeys, error) {
	var data attest.ReportData
	copy(data[:], sessionNonce[:])
	report := attest.EReport(p, e, sgx.Measurement{}, data)
	quote, err := qe.Quote(report)
	if err != nil {
		return nil, nil, err
	}
	return quote, deriveKeys(master, sessionNonce), nil
}

package openvpn

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"hotcalls/internal/apps/porting"
	"hotcalls/internal/sdk"
	"hotcalls/internal/sgx"
	"hotcalls/internal/sgx/attest"
	"hotcalls/internal/sim"
)

func testKeys() ([16]byte, [32]byte) {
	var ck [16]byte
	var mk [32]byte
	copy(ck[:], "tunnel-cipher-k!")
	copy(mk[:], "tunnel-hmac-key-tunnel-hmac-key-")
	return ck, mk
}

func TestSealOpenRoundTrip(t *testing.T) {
	ck, mk := testKeys()
	tx, rx := NewCipher(ck, mk), NewCipher(ck, mk)
	payload := bytes.Repeat([]byte{0x5a}, 1200)
	frame := make([]byte, FrameOverhead+len(payload))
	n := tx.Seal(frame, payload)
	if n != len(frame) {
		t.Fatalf("frame len = %d", n)
	}
	out := make([]byte, MTU)
	pn, err := rx.Open(out, frame[:n])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out[:pn], payload) {
		t.Fatal("payload corrupted through the tunnel")
	}
}

func TestCiphertextHidesPayload(t *testing.T) {
	ck, mk := testKeys()
	tx := NewCipher(ck, mk)
	payload := bytes.Repeat([]byte("secret!!"), 64)
	frame := make([]byte, FrameOverhead+len(payload))
	tx.Seal(frame, payload)
	if bytes.Contains(frame, payload[:32]) {
		t.Fatal("frame leaks plaintext")
	}
}

func TestTamperedFrameRejected(t *testing.T) {
	ck, mk := testKeys()
	tx, rx := NewCipher(ck, mk), NewCipher(ck, mk)
	payload := make([]byte, 500)
	frame := make([]byte, FrameOverhead+len(payload))
	n := tx.Seal(frame, payload)
	frame[FrameOverhead+3] ^= 1
	if _, err := rx.Open(make([]byte, MTU), frame[:n]); !errors.Is(err, ErrBadMAC) {
		t.Fatalf("err = %v, want ErrBadMAC", err)
	}
}

func TestReplayRejected(t *testing.T) {
	ck, mk := testKeys()
	tx, rx := NewCipher(ck, mk), NewCipher(ck, mk)
	payload := make([]byte, 100)
	frame := make([]byte, FrameOverhead+len(payload))
	n := tx.Seal(frame, payload)
	cp := append([]byte(nil), frame[:n]...)
	if _, err := rx.Open(make([]byte, MTU), frame[:n]); err != nil {
		t.Fatal(err)
	}
	if _, err := rx.Open(make([]byte, MTU), cp); !errors.Is(err, ErrReplay) {
		t.Fatalf("err = %v, want ErrReplay", err)
	}
}

func TestShortFrameRejected(t *testing.T) {
	ck, mk := testKeys()
	rx := NewCipher(ck, mk)
	if _, err := rx.Open(make([]byte, MTU), []byte{1, 2, 3}); !errors.Is(err, ErrShortPkt) {
		t.Fatalf("err = %v", err)
	}
}

func TestTunnelRoundTripProperty(t *testing.T) {
	ck, mk := testKeys()
	tx, rx := NewCipher(ck, mk), NewCipher(ck, mk)
	frame := make([]byte, MTU+FrameOverhead)
	out := make([]byte, MTU)
	f := func(payload []byte) bool {
		if len(payload) == 0 || len(payload) > MTU {
			return true
		}
		n := tx.Seal(frame, payload)
		pn, err := rx.Open(out, frame[:n])
		return err == nil && bytes.Equal(out[:pn], payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestServerForwardsRealData(t *testing.T) {
	s := NewServer(porting.Native)
	ck, mk := testKeys()
	clientSeal := NewCipher(ck, mk)
	payload := bytes.Repeat([]byte{7}, 1000)
	var clk sim.Clock
	s.ServePacket(&clk, clientSeal, payload, false)
	// The plaintext must have arrived on the tun device socket.
	got, ok := s.App.Kernel.TakeRX(s.tunFD)
	if ok {
		t.Log("tun rx consumed by reverse path") // reverse may have consumed it
	}
	_ = got
	if s.ForwardedBytes() != 1000 {
		t.Fatalf("forwarded %d bytes, want 1000", s.ForwardedBytes())
	}
}

func TestServerWorksInAllModes(t *testing.T) {
	for _, mode := range porting.Modes {
		t.Run(mode.String(), func(t *testing.T) {
			s := NewServer(mode)
			ck, mk := testKeys()
			seal := NewCipher(ck, mk)
			payload := make([]byte, IperfPayload)
			var clk sim.Clock
			for i := 0; i < 10; i++ {
				s.ServePacket(&clk, seal, payload, false)
			}
			if s.ForwardedBytes() != 10*IperfPayload {
				t.Fatalf("forwarded = %d", s.ForwardedBytes())
			}
		})
	}
}

func TestTable2CallMix(t *testing.T) {
	// Table 2 at ~30k packets/s: poll 87k/s, time 87k/s, getpid 13.6k/s,
	// write 30k/s, recvfrom 30k/s, read 13.6k/s, sendto 13.6k/s.
	// Normalized per packet: 2.9 / 2.9 / 0.45 / 1 / 1 / 0.45 / 0.45.
	s := NewServer(porting.SGX)
	ck, mk := testKeys()
	seal := NewCipher(ck, mk)
	payload := make([]byte, IperfPayload)
	var clk sim.Clock
	s.App.ResetCounters()
	const n = 1000
	for i := 0; i < n; i++ {
		s.ServePacket(&clk, seal, payload, false)
	}
	c := s.App.Counters()
	ratios := map[string]float64{
		"ocall_poll":     2.9,
		"ocall_time":     2.9,
		"ocall_getpid":   0.45,
		"ocall_write":    1.0,
		"ocall_recvfrom": 1.0,
		"ocall_read":     0.45,
		"ocall_sendto":   0.45,
	}
	for name, want := range ratios {
		got := float64(c[name]) / n
		if got < want*0.9 || got > want*1.1 {
			t.Errorf("%s = %.2f per packet, want %.2f", name, got, want)
		}
	}
	// Total should approach Table 2's 275k calls/s at 30k pps = 9.15.
	var total uint64
	for name, v := range c {
		if name != "ecall_process_event" {
			total += v
		}
	}
	if perPkt := float64(total) / n; perPkt < 8.2 || perPkt > 10.1 {
		t.Errorf("total ocalls per packet = %.2f, want ~9.15", perPkt)
	}
}

// TestNativeBandwidthMatch pins the calibration point: native openVPN
// carried 866 Mbit/s over the 935 Mbit/s link (Section 6.3).
func TestNativeBandwidthMatch(t *testing.T) {
	m := RunIperf(porting.Native, 0.05)
	t.Logf("native: %.0f Mbit/s (paper: 866)", m.BandwidthMbs)
	if m.BandwidthMbs < 866*0.95 || m.BandwidthMbs > 866*1.05 {
		t.Errorf("native bandwidth = %.0f Mbit/s, want 866 +/- 5%%", m.BandwidthMbs)
	}
}

// TestSGXBandwidthMatch pins the second calibration point: the unoptimized
// port dropped to 309 Mbit/s (-64%).
func TestSGXBandwidthMatch(t *testing.T) {
	m := RunIperf(porting.SGX, 0.05)
	t.Logf("sgx: %.0f Mbit/s (paper: 309)", m.BandwidthMbs)
	if m.BandwidthMbs < 309*0.88 || m.BandwidthMbs > 309*1.12 {
		t.Errorf("sgx bandwidth = %.0f Mbit/s, want 309 +/- 12%%", m.BandwidthMbs)
	}
}

// TestHotCallsPrediction checks the predicted points: 694 Mbit/s with
// HotCalls, 823 Mbit/s with No-Redundant-Zeroing.
func TestHotCallsPrediction(t *testing.T) {
	hc := RunIperf(porting.HotCalls, 0.05)
	nrz := RunIperf(porting.HotCallsNRZ, 0.05)
	t.Logf("hotcalls: %.0f Mbit/s (paper: 694); +NRZ: %.0f (paper: 823)", hc.BandwidthMbs, nrz.BandwidthMbs)
	if hc.BandwidthMbs < 694*0.8 || hc.BandwidthMbs > 694*1.2 {
		t.Errorf("hotcalls bandwidth = %.0f, want 694 +/- 20%%", hc.BandwidthMbs)
	}
	if nrz.BandwidthMbs <= hc.BandwidthMbs {
		t.Errorf("NRZ (%.0f) must beat HotCalls (%.0f)", nrz.BandwidthMbs, hc.BandwidthMbs)
	}
	if nrz.BandwidthMbs < 823*0.8 || nrz.BandwidthMbs > 823*1.2 {
		t.Errorf("nrz bandwidth = %.0f, want 823 +/- 20%%", nrz.BandwidthMbs)
	}
}

// TestPingLatencies checks the flood-ping round trips of Figure 11:
// 1.427 / 4.579 / 1.873 / 1.747 ms for native / SGX / HotCalls / NRZ.
func TestPingLatencies(t *testing.T) {
	want := map[porting.Mode]float64{
		porting.Native:      1.427e-3,
		porting.SGX:         4.579e-3,
		porting.HotCalls:    1.873e-3,
		porting.HotCallsNRZ: 1.747e-3,
	}
	got := map[porting.Mode]float64{}
	for _, mode := range porting.Modes {
		m := RunPing(mode, 0.03)
		got[mode] = m.AvgLatency
		t.Logf("%s ping: %.3f ms (paper: %.3f)", mode, m.AvgLatency*1e3, want[mode]*1e3)
	}
	// Ordering must hold exactly; magnitudes within a loose band (the
	// ping path was not calibrated).
	if !(got[porting.Native] < got[porting.HotCallsNRZ] &&
		got[porting.HotCallsNRZ] < got[porting.HotCalls] &&
		got[porting.HotCalls] < got[porting.SGX]) {
		t.Errorf("latency ordering violated: %v", got)
	}
	for mode, w := range want {
		if got[mode] < w*0.5 || got[mode] > w*1.6 {
			t.Errorf("%s ping = %.3f ms, want ~%.3f ms", mode, got[mode]*1e3, w*1e3)
		}
	}
}

func handshakeFixture(t *testing.T) (*sgx.Platform, *sgx.Enclave, *attest.Service, *attest.QuotingEnclave) {
	t.Helper()
	p := sgx.NewPlatform(6006)
	var clk sim.Clock
	e := p.ECreate(&clk, 8<<20, 1, sgx.Attributes{ProdID: 12})
	if err := e.EAdd(&clk, 0, []byte("openvpn-enclave")); err != nil {
		t.Fatal(err)
	}
	if err := e.EInit(&clk); err != nil {
		t.Fatal(err)
	}
	svc := attest.NewService()
	qe, err := svc.Provision(p, "vpn-host")
	if err != nil {
		t.Fatal(err)
	}
	return p, e, svc, qe
}

func TestAttestedHandshakeDerivesMatchingKeys(t *testing.T) {
	p, e, svc, qe := handshakeFixture(t)
	var master [32]byte
	copy(master[:], "provisioned-master-secret-32-byt")
	var nonce [16]byte
	copy(nonce[:], "session-nonce-01")

	quote, serverKeys, err := EnclaveHandshake(p, e, qe, master, nonce)
	if err != nil {
		t.Fatal(err)
	}
	clientKeys, err := Handshake(svc, quote, e.MRENCLAVE(), master, nonce)
	if err != nil {
		t.Fatal(err)
	}
	// A packet sealed with the client's c2s keys opens with the
	// server's c2s keys: both sides derived the same material.
	payload := []byte("attested tunnel payload")
	frame := make([]byte, FrameOverhead+len(payload))
	n := clientKeys.ClientToServer.Seal(frame, payload)
	out := make([]byte, MTU)
	pn, err := serverKeys.ClientToServer.Open(out, frame[:n])
	if err != nil {
		t.Fatal(err)
	}
	if string(out[:pn]) != string(payload) {
		t.Fatal("handshake keys diverged")
	}
}

func TestHandshakeRejectsWrongEnclave(t *testing.T) {
	p, e, svc, qe := handshakeFixture(t)
	var master [32]byte
	var nonce [16]byte
	quote, _, err := EnclaveHandshake(p, e, qe, master, nonce)
	if err != nil {
		t.Fatal(err)
	}
	wrong := e.MRENCLAVE()
	wrong[0] ^= 1
	if _, err := Handshake(svc, quote, wrong, master, nonce); !errors.Is(err, ErrAttestationFailed) {
		t.Fatalf("err = %v, want ErrAttestationFailed", err)
	}
}

func TestHandshakeRejectsReplayedQuote(t *testing.T) {
	p, e, svc, qe := handshakeFixture(t)
	var master [32]byte
	var oldNonce, newNonce [16]byte
	copy(oldNonce[:], "old-session-aaaa")
	copy(newNonce[:], "new-session-bbbb")
	oldQuote, _, err := EnclaveHandshake(p, e, qe, master, oldNonce)
	if err != nil {
		t.Fatal(err)
	}
	// Replaying last session's quote against a fresh nonce must fail.
	if _, err := Handshake(svc, oldQuote, e.MRENCLAVE(), master, newNonce); !errors.Is(err, ErrAttestationFailed) {
		t.Fatalf("err = %v, want ErrAttestationFailed", err)
	}
}

func TestHandshakeRejectsTamperedQuote(t *testing.T) {
	p, e, svc, qe := handshakeFixture(t)
	var master [32]byte
	var nonce [16]byte
	quote, _, err := EnclaveHandshake(p, e, qe, master, nonce)
	if err != nil {
		t.Fatal(err)
	}
	quote.Report.Attributes.Debug = true
	if _, err := Handshake(svc, quote, e.MRENCLAVE(), master, nonce); !errors.Is(err, ErrAttestationFailed) {
		t.Fatalf("err = %v, want ErrAttestationFailed", err)
	}
}

func TestDifferentNoncesDifferentKeys(t *testing.T) {
	var master [32]byte
	var n1, n2 [16]byte
	n1[0], n2[0] = 1, 2
	k1 := deriveKeys(master, n1)
	k2 := deriveKeys(master, n2)
	payload := make([]byte, 64)
	f1 := make([]byte, FrameOverhead+64)
	k1.ClientToServer.Seal(f1, payload)
	if _, err := k2.ClientToServer.Open(make([]byte, MTU), f1); err == nil {
		t.Fatal("keys from different nonces interoperate")
	}
}

func TestServerDropsCorruptedFrames(t *testing.T) {
	s := NewServer(porting.SGX)
	ck, mk := testKeys()
	seal := NewCipher(ck, mk)
	payload := make([]byte, 600)

	// A tampered frame injected straight onto the transport.
	frame := make([]byte, FrameOverhead+len(payload))
	n := seal.Seal(frame, payload)
	frame[FrameOverhead+1] ^= 1
	if err := s.App.Kernel.Inject(s.udpFD, frame[:n]); err != nil {
		t.Fatal(err)
	}
	var clk sim.Clock
	s.plan = eventPlan{payload: 64}
	if _, err := s.App.Call(&clk, "ecall_process_event", sdk.Scalar(0), sdk.Scalar(0)); err != nil {
		t.Fatal(err)
	}
	if s.Dropped() != 1 || s.ForwardedBytes() != 0 {
		t.Fatalf("dropped=%d forwarded=%d, want 1, 0", s.Dropped(), s.ForwardedBytes())
	}
	// The server keeps serving legitimate traffic afterwards.
	s.ServePacket(&clk, seal, payload, false)
	if s.ForwardedBytes() != 600 {
		t.Fatalf("server wedged after drop: forwarded=%d", s.ForwardedBytes())
	}
}

package openvpn

import (
	"hotcalls/internal/apps/porting"
	"hotcalls/internal/sdk"
	"hotcalls/internal/sim"
)

// EDL is the edge interface for the openVPN port: the seven frequent API
// calls of Table 2 (poll, time, getpid, write, recvfrom, read, sendto).
// recvfrom and read receive buffers from the untrusted side, hence [out] —
// the two calls whose redundant zeroing No-Redundant-Zeroing removes
// (Section 6.3).
const EDL = `
enclave {
    trusted {
        public int ecall_main(void);
        public int ecall_process_event([user_check] void* ev, [user_check] void* arg);
    };
    untrusted {
        long ocall_socket(void);
        long ocall_poll(int nfds);
        long ocall_time(void);
        long ocall_getpid(void);
        long ocall_recvfrom(int fd, [out, size=cap] uint8_t* buf, size_t cap);
        long ocall_write(int fd, [in, size=len] uint8_t* buf, size_t len);
        long ocall_read(int fd, [out, size=cap] uint8_t* buf, size_t cap);
        long ocall_sendto(int fd, [in, size=len] uint8_t* buf, size_t len);
    };
};
`

// Workload constants from Section 6.3.
const (
	MTU            = 1500
	BufSize        = 4096 // openVPN's internal struct buffer capacity
	IperfPayload   = 1400 // TCP segment payload carried through the tunnel
	PingPayload    = 84   // ICMP echo + headers
	PingPreload    = 100  // flood ping with -l 100
	LinkMbits      = 935  // measured raw TCP capacity of the 1 Gbit link
	linkRTTSeconds = 0.00025

	// cryptoCPB is OpenSSL's AES-128-CTR + HMAC-SHA256 cost with AES-NI,
	// cycles per byte.
	cryptoCPB = 4.5

	// cpuWorkPerPacket is openVPN's per-packet compute beyond crypto and
	// modelled memory traffic: routing, option processing, buffer
	// management, event bookkeeping.  Calibrated so the native tunnel
	// carries the paper's 866 Mbit/s (TestNativeBandwidthMatch).
	cpuWorkPerPacket = 42318

	// Call-mix accumulators, matching Table 2's per-second rates at the
	// SGX port's 30 k packets/s: poll and time 2.9x per packet, getpid
	// 0.45x, and the reverse path (read/sendto) 0.45x under iperf.
	pollPerPacket   = 2.9
	timePerPacket   = 2.9
	getpidPerPacket = 0.45
	reversePerIperf = 0.45

	// Enclave pages touched per processing segment (cipher context,
	// packet buffers, routing tables) — TLB refills under the SDK port.
	pagesPerSegment = 4
)

// Server is one openVPN endpoint bound to a port configuration.
type Server struct {
	App *porting.App

	rx *Cipher // client -> server direction keys
	tx *Cipher // server -> client direction keys

	udpFD  int // the tunnel transport socket
	tunFD  int // the virtual tun device
	PeerFD int

	frameBuf *sdk.Buffer // encrypted frames (enclave side)
	plainBuf *sdk.Buffer // decrypted payloads (enclave side)

	pollCredit, timeCredit, pidCredit, revCredit float64
	plan                                         eventPlan

	forwardedBytes uint64
	dropped        uint64
}

// NewServer boots the tunnel endpoint in the given mode with deterministic
// session keys (in a deployment these arrive via remote attestation; see
// the securetunnel example).
func NewServer(mode porting.Mode) *Server {
	app := porting.New(mode, porting.Config{Seed: 2021, EnclaveSize: 64 << 20}, EDL)
	s := &Server{App: app}
	var ck [16]byte
	var mk [32]byte
	copy(ck[:], "tunnel-cipher-k!")
	copy(mk[:], "tunnel-hmac-key-tunnel-hmac-key-")
	s.rx = NewCipher(ck, mk)
	s.tx = NewCipher(ck, mk)

	k := app.Kernel
	app.BindUntrusted("ocall_socket", func(ctx *sdk.Ctx, args []sdk.Arg) uint64 {
		return uint64(k.Socket(ctx.Clk))
	})
	app.BindUntrusted("ocall_poll", func(ctx *sdk.Ctx, args []sdk.Arg) uint64 {
		return uint64(k.Poll(ctx.Clk, s.udpFD, s.tunFD))
	})
	app.BindUntrusted("ocall_time", func(ctx *sdk.Ctx, args []sdk.Arg) uint64 {
		return k.Time(ctx.Clk)
	})
	app.BindUntrusted("ocall_getpid", func(ctx *sdk.Ctx, args []sdk.Arg) uint64 {
		return uint64(k.GetPID(ctx.Clk))
	})
	recv := func(name string) func(*sdk.Ctx, []sdk.Arg) uint64 {
		return func(ctx *sdk.Ctx, args []sdk.Arg) uint64 {
			buf := args[1].Buf
			n, err := k.Recv(ctx.Clk, name, int(args[0].Scalar), buf.Addr, buf.Data[:args[2].Scalar])
			if err != nil {
				panic(err)
			}
			return uint64(n)
		}
	}
	send := func(name string) func(*sdk.Ctx, []sdk.Arg) uint64 {
		return func(ctx *sdk.Ctx, args []sdk.Arg) uint64 {
			buf := args[1].Buf
			n, err := k.Send(ctx.Clk, name, int(args[0].Scalar), buf.Addr, buf.Data[:args[2].Scalar])
			if err != nil {
				panic(err)
			}
			return uint64(n)
		}
	}
	app.BindUntrusted("ocall_recvfrom", recv("recvfrom"))
	app.BindUntrusted("ocall_read", recv("read"))
	app.BindUntrusted("ocall_write", send("write"))
	app.BindUntrusted("ocall_sendto", send("sendto"))

	app.BindTrusted("ecall_main", func(env *porting.Env, args []sdk.Arg) uint64 {
		udp, err := env.OCall("ocall_socket")
		if err != nil {
			panic(err)
		}
		tun, err := env.OCall("ocall_socket")
		if err != nil {
			panic(err)
		}
		s.udpFD, s.tunFD = int(udp), int(tun)
		return 0
	})
	app.BindTrusted("ecall_process_event", s.processEvent)

	var clk sim.Clock
	if _, err := app.Call(&clk, "ecall_main"); err != nil {
		panic(err)
	}
	// Peer the transport socket with a generator-visible endpoint.
	lfd := k.Socket(&clk)
	if err := k.Listen(&clk, lfd); err != nil {
		panic(err)
	}
	// Rewire: the udp socket pair is modelled as an accepted connection.
	peer, err := k.InjectConnection(lfd)
	if err != nil {
		panic(err)
	}
	conn, err := k.Accept(&clk, lfd)
	if err != nil {
		panic(err)
	}
	s.udpFD = conn
	s.PeerFD = peer

	s.frameBuf = app.AllocBuffer(&clk, BufSize)
	s.plainBuf = app.AllocBuffer(&clk, BufSize)
	return s
}

// InjectFrame queues an encrypted frame on the tunnel transport, as the
// remote peer would (generator side; sealed with the client-side keys).
func (s *Server) InjectFrame(seal *Cipher, payload []byte) {
	frame := make([]byte, FrameOverhead+len(payload))
	seal.Seal(frame, payload)
	if err := s.App.Kernel.Inject(s.udpFD, frame); err != nil {
		panic(err)
	}
}

// eventPlan tells processEvent whether this event also carries a
// reverse-direction packet; set by the serve wrappers through the credit
// accumulators.
type eventPlan struct {
	payload int
	reverse bool
}

// processEvent is the trusted event handler: the poll/time bookkeeping,
// the decrypt-and-forward data path, and (when the plan says so) the
// reverse encrypt-and-send path.
func (s *Server) processEvent(env *porting.Env, args []sdk.Arg) uint64 {
	m := env.App.Platform.Mem

	// Event-loop bookkeeping at the Table 2 rates.
	s.pollCredit += pollPerPacket
	for ; s.pollCredit >= 1; s.pollCredit-- {
		if _, err := env.OCall("ocall_poll", sdk.Scalar(2)); err != nil {
			panic(err)
		}
	}
	env.TouchPages(1)
	s.timeCredit += timePerPacket
	for ; s.timeCredit >= 1; s.timeCredit-- {
		if _, err := env.OCall("ocall_time"); err != nil {
			panic(err)
		}
	}
	env.TouchPages(1)

	// Forward path: encrypted frame in from the transport.
	n, err := env.OCall("ocall_recvfrom", sdk.Scalar(uint64(s.udpFD)), sdk.Buf(s.frameBuf), sdk.Scalar(BufSize))
	if err != nil {
		panic(err)
	}
	env.TouchPages(pagesPerSegment)

	s.pidCredit += getpidPerPacket
	for ; s.pidCredit >= 1; s.pidCredit-- {
		if _, err := env.OCall("ocall_getpid"); err != nil {
			panic(err)
		}
		env.TouchPages(1)
	}

	// Real decrypt + authenticate; cost charged at OpenSSL's rate.
	closeCrypto := env.Section(porting.CatCrypto)
	plainLen, err := s.rx.Open(s.plainBuf.Data, s.frameBuf.Data[:n])
	if err != nil {
		// Authentication or replay failure: a real openVPN drops the
		// datagram and keeps serving (the attacker only wastes our
		// MAC check).
		env.Clk.AdvanceF(float64(n) * cryptoCPB)
		closeCrypto()
		s.dropped++
		return 0
	}
	env.Clk.AdvanceF(float64(n) * cryptoCPB)
	m.StreamRead(env.Clk, s.frameBuf.Addr, uint64(n))
	m.StreamWrite(env.Clk, s.plainBuf.Addr, uint64(plainLen))
	closeCrypto()

	closeWork := env.Section(porting.CatAppWork)
	env.Clk.Advance(cpuWorkPerPacket)
	closeWork()

	// Plaintext out to the tun device.
	if _, err := env.OCall("ocall_write", sdk.Scalar(uint64(s.tunFD)), sdk.Buf(s.plainBuf), sdk.Scalar(uint64(plainLen))); err != nil {
		panic(err)
	}
	s.forwardedBytes += uint64(plainLen)

	if s.plan.reverse {
		env.TouchPages(pagesPerSegment)
		// Reverse path: plaintext from the tun device, seal, send.
		rn, err := env.OCall("ocall_read", sdk.Scalar(uint64(s.tunFD)), sdk.Buf(s.plainBuf), sdk.Scalar(BufSize))
		if err != nil {
			panic(err)
		}
		_ = rn
		closeRev := env.Section(porting.CatCrypto)
		frameLen := s.tx.Seal(s.frameBuf.Data, s.plainBuf.Data[:s.plan.payload])
		env.Clk.AdvanceF(float64(frameLen) * cryptoCPB)
		m.StreamRead(env.Clk, s.plainBuf.Addr, uint64(s.plan.payload))
		m.StreamWrite(env.Clk, s.frameBuf.Addr, uint64(frameLen))
		closeRev()
		if _, err := env.OCall("ocall_sendto", sdk.Scalar(uint64(s.udpFD)), sdk.Buf(s.frameBuf), sdk.Scalar(uint64(frameLen))); err != nil {
			panic(err)
		}
	}
	return uint64(plainLen)
}

// ServePacket pushes one tunnel datagram through the endpoint: inject the
// encrypted frame, run the event handler, and (per the credit model)
// possibly a reverse-direction packet.
func (s *Server) ServePacket(clk *sim.Clock, seal *Cipher, payload []byte, forceReverse bool) {
	// Queue traffic for the tun device so a reverse read has data.
	s.revCredit += reversePerIperf
	rev := forceReverse
	if !forceReverse && s.revCredit >= 1 {
		s.revCredit--
		rev = true
	}
	if rev {
		if err := s.App.Kernel.Inject(s.tunFD, payload[:min(64, len(payload))]); err != nil {
			panic(err)
		}
	}
	s.InjectFrame(seal, payload)
	s.plan = eventPlan{payload: min(64, len(payload)), reverse: rev}
	if _, err := s.App.Call(clk, "ecall_process_event", sdk.Scalar(0), sdk.Scalar(0)); err != nil {
		panic(err)
	}
}

// ForwardedBytes returns payload bytes delivered to the tun device.
func (s *Server) ForwardedBytes() uint64 { return s.forwardedBytes }

// Dropped returns the number of datagrams rejected by authentication or
// replay protection.
func (s *Server) Dropped() uint64 { return s.dropped }

// RunIperf measures tunnel TCP bandwidth as iperf3 does (Section 6.3) and
// returns megabits per second, capped by the physical link.
func RunIperf(mode porting.Mode, simSeconds float64) porting.Metrics {
	s := NewServer(mode)
	var ck [16]byte
	var mk [32]byte
	copy(ck[:], "tunnel-cipher-k!")
	copy(mk[:], "tunnel-hmac-key-tunnel-hmac-key-")
	clientSeal := NewCipher(ck, mk)
	payload := make([]byte, IperfPayload)
	for i := range payload {
		payload[i] = byte(i)
	}
	m := porting.RunClosedLoop(64, sim.Cycles(simSeconds), func(clk *sim.Clock) {
		s.ServePacket(clk, clientSeal, payload, false)
	})
	m.BytesTX = s.ForwardedBytes()
	m.BandwidthMbs = float64(m.BytesTX) * 8 / m.SimSeconds / 1e6
	if m.BandwidthMbs > LinkMbits {
		scale := LinkMbits / m.BandwidthMbs
		m.BandwidthMbs = LinkMbits
		m.Throughput *= scale
	}
	return m
}

// RunPing measures the flood-ping round-trip latency (1 M requests with a
// preload of 100 in the paper; the closed loop reaches the same steady
// state much sooner).
func RunPing(mode porting.Mode, simSeconds float64) porting.Metrics {
	s := NewServer(mode)
	var ck [16]byte
	var mk [32]byte
	copy(ck[:], "tunnel-cipher-k!")
	copy(mk[:], "tunnel-hmac-key-tunnel-hmac-key-")
	clientSeal := NewCipher(ck, mk)
	payload := make([]byte, PingPayload)
	m := porting.RunClosedLoop(PingPreload, sim.Cycles(simSeconds), func(clk *sim.Clock) {
		// An echo request traverses forward and the reply traverses
		// back: reverse processing on every ping.
		s.ServePacket(clk, clientSeal, payload, true)
	})
	m.AvgLatency += linkRTTSeconds
	m.P50Latency += linkRTTSeconds
	m.P99Latency += linkRTTSeconds
	return m
}

// Package openvpn is the paper's second evaluation application
// (Section 6.3): an encrypted UDP tunnel in the style of openVPN 2.3.12
// with OpenSSL, ported wholesale into an enclave to protect the tunnel
// keys.  The data path is real: packets are encrypted with AES-128-CTR and
// authenticated with HMAC-SHA256, and a tampered or replayed datagram is
// rejected.
package openvpn

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
)

// Tunnel framing: 4-byte packet ID (replay protection) + 16-byte truncated
// HMAC + ciphertext.
const (
	packetIDSize  = 4
	macSize       = 16
	FrameOverhead = packetIDSize + macSize
)

// Errors from the tunnel data path.
var (
	ErrBadMAC   = errors.New("openvpn: packet failed authentication")
	ErrReplay   = errors.New("openvpn: replayed packet ID")
	ErrShortPkt = errors.New("openvpn: truncated packet")
)

// Cipher is one direction of the tunnel: an AES-CTR key, an HMAC key, and
// the replay window.  It mirrors an OpenSSL EVP cipher context; openVPN
// consults the PRNG (and thus calls getpid via OpenSSL) around context
// operations, which is why getpid appears in Table 2.
type Cipher struct {
	block   cipher.Block
	macKey  [32]byte
	nextID  uint32 // sender: next packet ID
	highest uint32 // receiver: highest ID seen (replay floor)
}

// NewCipher builds one direction from 16-byte cipher and 32-byte MAC keys.
func NewCipher(key [16]byte, macKey [32]byte) *Cipher {
	block, err := aes.NewCipher(key[:])
	if err != nil {
		panic(err) // fixed-size key cannot fail
	}
	return &Cipher{block: block, macKey: macKey, nextID: 1}
}

func (c *Cipher) stream(id uint32) cipher.Stream {
	var iv [16]byte
	binary.BigEndian.PutUint32(iv[:], id)
	return cipher.NewCTR(c.block, iv[:])
}

func (c *Cipher) mac(frame []byte) [macSize]byte {
	h := hmac.New(sha256.New, c.macKey[:])
	h.Write(frame)
	var out [macSize]byte
	copy(out[:], h.Sum(nil))
	return out
}

// Seal encrypts and authenticates one plaintext packet into dst and
// returns the frame length.
func (c *Cipher) Seal(dst, plaintext []byte) int {
	id := c.nextID
	c.nextID++
	binary.BigEndian.PutUint32(dst[:packetIDSize], id)
	ct := dst[FrameOverhead : FrameOverhead+len(plaintext)]
	c.stream(id).XORKeyStream(ct, plaintext)
	mac := c.mac(append(dst[:packetIDSize:packetIDSize], ct...))
	copy(dst[packetIDSize:FrameOverhead], mac[:])
	return FrameOverhead + len(plaintext)
}

// Open authenticates and decrypts one frame into dst, enforcing the
// replay window.  It returns the plaintext length.
func (c *Cipher) Open(dst, frame []byte) (int, error) {
	if len(frame) < FrameOverhead {
		return 0, ErrShortPkt
	}
	id := binary.BigEndian.Uint32(frame[:packetIDSize])
	ct := frame[FrameOverhead:]
	want := c.mac(append(frame[:packetIDSize:packetIDSize], ct...))
	if !hmac.Equal(want[:], frame[packetIDSize:FrameOverhead]) {
		return 0, ErrBadMAC
	}
	if id <= c.highest {
		return 0, ErrReplay
	}
	c.highest = id
	c.stream(id).XORKeyStream(dst[:len(ct)], ct)
	return len(ct), nil
}

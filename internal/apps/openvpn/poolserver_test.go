package openvpn

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"hotcalls/internal/core"
	"hotcalls/internal/epc"
	"hotcalls/internal/epcstat"
	"hotcalls/internal/flight"
	"hotcalls/internal/telemetry"
)

// fastVPNOpts keeps adaptive transitions quick in tests.
func fastVPNOpts(maxResponders int) core.PoolOptions {
	return core.PoolOptions{
		SlotsPerShard: vpnWindow,
		MinResponders: 1,
		MaxResponders: maxResponders,
		Timeout:       1 << 20,
		ControlWindow: 8,
		SpinPasses:    2,
		YieldPasses:   4,
	}
}

func testPayload(n, tag int) []byte {
	p := make([]byte, n)
	for i := range p {
		p[i] = byte(i ^ tag)
	}
	return p
}

func TestPoolTunnelForward(t *testing.T) {
	s := NewPoolServer(1, fastVPNOpts(2))
	s.Start()
	defer s.Stop()
	c := s.Conn(0)

	for i := 0; i < 20; i++ {
		payload := testPayload(IperfPayload, i)
		n, err := c.Forward(payload)
		if err != nil {
			t.Fatalf("forward %d: %v", i, err)
		}
		if n != FrameOverhead+len(payload) {
			t.Fatalf("frame len = %d, want %d", n, FrameOverhead+len(payload))
		}
	}
	if free := c.ring.FreeSlabs(); free != c.ring.Slabs() {
		t.Fatalf("slabs leaked: %d free of %d", free, c.ring.Slabs())
	}
}

func TestPoolTunnelTamperDrop(t *testing.T) {
	s := NewPoolServer(1, fastVPNOpts(1))
	s.Start()
	defer s.Stop()
	c := s.Conn(0)

	slab, segs, err := c.sealInto(testPayload(256, 1))
	if err != nil {
		t.Fatal(err)
	}
	// Flip one ciphertext bit in the slab — a tampered datagram.
	c.ring.Bytes(segs[1])[10] ^= 0x01
	ret, err := c.req.CallZC(opTunnel, 0, segs[:])
	c.ring.Release(slab)
	if err != nil || ret != ^uint64(0) {
		t.Fatalf("tampered frame = (%#x, %v), want sentinel", ret, err)
	}

	// A malformed descriptor list (no header segment) is also dropped.
	slab2, segs2, err := c.sealInto(testPayload(64, 2))
	if err != nil {
		t.Fatal(err)
	}
	ret, err = c.req.CallZC(opTunnel, 0, segs2[1:])
	c.ring.Release(slab2)
	if err != nil || ret != ^uint64(0) {
		t.Fatalf("headerless frame = (%#x, %v), want sentinel", ret, err)
	}
}

func TestPoolTunnelStreamWindow(t *testing.T) {
	s := NewPoolServer(1, fastVPNOpts(2))
	s.Start()
	defer s.Stop()
	c := s.Conn(0)

	payloads := make([][]byte, vpnWindow)
	for round := 0; round < 4; round++ {
		for i := range payloads {
			payloads[i] = testPayload(IperfPayload, round*vpnWindow+i)
		}
		n, err := c.Stream(payloads)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if n != vpnWindow {
			t.Fatalf("round %d relayed %d, want %d", round, n, vpnWindow)
		}
	}
}

func TestPoolTunnelPumpBytes(t *testing.T) {
	s := NewPoolServer(1, fastVPNOpts(2))
	s.Start()
	defer s.Stop()
	c := s.Conn(0)

	const packets = 100
	payload := testPayload(IperfPayload, 9)
	total, err := c.Pump(payload, packets)
	if err != nil {
		t.Fatal(err)
	}
	want := uint64(packets) * uint64(FrameOverhead+IperfPayload)
	if total != want {
		t.Fatalf("pumped %d bytes, want %d", total, want)
	}
	if free := c.ring.FreeSlabs(); free != c.ring.Slabs() {
		t.Fatalf("slabs leaked after pump: %d free of %d", free, c.ring.Slabs())
	}
}

func TestPoolTunnelConcurrentConnections(t *testing.T) {
	const conns = 4
	s := NewPoolServer(conns, fastVPNOpts(3))
	s.SetTelemetry(telemetry.New())
	s.Start()
	defer s.Stop()

	var wg sync.WaitGroup
	errs := make(chan error, conns)
	for ci := 0; ci < conns; ci++ {
		c := s.Conn(ci)
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			payloads := make([][]byte, vpnWindow)
			for round := 0; round < 25; round++ {
				for i := range payloads {
					payloads[i] = testPayload(512, ci*1000+round*vpnWindow+i)
				}
				if n, err := c.Stream(payloads); err != nil || n != vpnWindow {
					errs <- fmt.Errorf("conn %d round %d: (%d, %v)", ci, round, n, err)
					return
				}
			}
			errs <- nil
		}(ci)
	}
	wg.Wait()
	for ci := 0; ci < conns; ci++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

// TestPoolTunnelEPCAttribution wires the paging model into the relay and
// checks slab-window traffic lands in the observatory owner-tagged by
// connection — the ring's SetTouch hook at work.
func TestPoolTunnelEPCAttribution(t *testing.T) {
	s := NewPoolServer(2, fastVPNOpts(2))
	reg := telemetry.New()
	s.SetTelemetry(reg)
	col := s.EnableEPC(256 * epc.PageSize)
	if col == nil || s.EPCManager() == nil {
		t.Fatal("EnableEPC returned no collector/manager")
	}
	if again := s.EnableEPC(64 * epc.PageSize); again != col {
		t.Fatal("EnableEPC is not idempotent")
	}
	s.Start()
	defer s.Stop()

	for conn := 0; conn < 2; conn++ {
		c := s.Conn(conn)
		for i := 0; i < 32; i++ {
			if _, err := c.Forward(testPayload(IperfPayload, conn*100+i)); err != nil {
				t.Fatalf("conn %d forward %d: %v", conn, i, err)
			}
		}
	}

	snap := col.Snapshot()
	if snap == nil || snap.Faults == 0 {
		t.Fatalf("no paging traffic observed: %+v", snap)
	}
	byLabel := map[string]epcstat.OwnerStats{}
	for _, o := range snap.Owners {
		byLabel[o.Label] = o
	}
	for conn := 0; conn < 2; conn++ {
		o, ok := byLabel[fmt.Sprintf("conn%d", conn)]
		if !ok || o.Faults == 0 {
			t.Fatalf("connection %d missing from owner table: %+v", conn, snap.Owners)
		}
	}
}

// TestPoolTunnelFlightBytes checks that zero-copy calls report their
// payload volume per callsite — the per-byte signal the what-if router's
// cost model consumes.
func TestPoolTunnelFlightBytes(t *testing.T) {
	s := NewPoolServer(1, fastVPNOpts(2))
	s.SetTelemetry(telemetry.New())
	rec := flight.New(flight.Options{SampleEvery: 1})
	s.SetFlight(rec)
	s.Start()
	defer s.Stop()
	c := s.Conn(0)

	const forwards = 8
	payload := testPayload(1024, 3)
	for i := 0; i < forwards; i++ {
		if _, err := c.Forward(payload); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Pump(payload, vpnWindow); err != nil {
		t.Fatal(err)
	}

	frameBytes := uint64(FrameOverhead + len(payload))
	found := map[string]bool{}
	for _, cs := range rec.Stats() {
		switch cs.Name {
		case "vpn.forward":
			found[cs.Name] = true
			if cs.Bytes != forwards*frameBytes {
				t.Errorf("vpn.forward bytes = %d, want %d", cs.Bytes, forwards*frameBytes)
			}
		case "vpn.stream":
			found[cs.Name] = true
			if cs.Bytes != vpnWindow*frameBytes {
				t.Errorf("vpn.stream bytes = %d, want %d", cs.Bytes, vpnWindow*frameBytes)
			}
		}
	}
	for _, name := range []string{"vpn.forward", "vpn.stream"} {
		if !found[name] {
			t.Errorf("callsite %q missing from stats table", name)
		}
	}

	var buf bytes.Buffer
	if err := rec.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("flight_callsite_bytes_total")) {
		t.Error("flight_callsite_bytes_total missing from exposition")
	}
}

// Package mem is the simulated memory hierarchy: it combines the last-level
// cache model, the Memory Encryption Engine cost model, and the Enclave
// Page Cache into a single System that every substrate charges its memory
// accesses through.
//
// The address space is split into a plaintext region and an enclave region;
// accesses to enclave addresses pay MEE costs and can fault pages in and
// out of the EPC.  The latency constants are calibrated against Table 1 of
// the paper (see DESIGN.md section 4).
package mem

import (
	"hotcalls/internal/cache"
	"hotcalls/internal/epc"
	"hotcalls/internal/epcstat"
	"hotcalls/internal/mee"
	"hotcalls/internal/sim"
	"hotcalls/internal/telemetry"
)

// Address-space layout.  The enclave region sits far above plaintext
// memory; anything at or above EnclaveBase is EPC-backed and encrypted.
const (
	PlainBase   = uint64(0x0000_1000_0000)
	EnclaveBase = uint64(0x7000_0000_0000)
	LineSize    = 64
)

// Latency constants, in cycles.  Each is pinned to a row of Table 1 or to
// a decomposition documented in DESIGN.md section 4.
// DemandHitCost is the cost of a demand load/store that hits anywhere in
// the hierarchy, exported for the analytic cost model (internal/profile):
// a warm call's cache component is its touched-line count times this.
const DemandHitCost = 12

const (
	demandHitCost  = DemandHitCost
	streamHitCost  = 2    // pipelined hit during a streaming sweep
	streamLine     = 21.9 // prefetched DRAM read, per line (727 = 32 lines + fence at 2 KB)
	streamRFO      = 7    // pipelined read-for-ownership, per line
	flushLine      = 50   // clflush issue cost per line
	writebackLine  = 144  // dirty-line write-back drained by clflush
	victimWB       = 15   // overlapped write-back of an evicted dirty line
	MFenceCost     = 25
	CopyPerByte    = 0.125  // optimized memcpy: 8 bytes per cycle
	CopyAVXPerByte = 0.0416 // AVX-256 memcpy: ~24 bytes per cycle sustained
	MemsetPerByte  = 1.0    // the SDK's byte-wise memset: 1 byte per cycle
)

// dramLoad and dramStore model DRAM row-buffer outcomes for isolated
// (demand) misses: row hit, row miss, row conflict.  Medians are pinned to
// Table 1 rows 9-10 (308 load, 481 store for plaintext).
var (
	dramLoad  = sim.Mixture{Values: []float64{230, 308, 520}, Weights: []float64{0.35, 0.45, 0.20}}
	dramStore = sim.Mixture{Values: []float64{400, 481, 650}, Weights: []float64{0.35, 0.45, 0.20}}
)

// System is one simulated socket's memory hierarchy.  It is not safe for
// concurrent use; the application simulations are single-threaded
// discrete-event loops, matching the single-threaded servers in the paper.
type System struct {
	LLC *cache.Cache
	MEE *mee.CostModel
	EPC *epc.Manager
	rng *sim.RNG

	// owner tags every EPC touch this system charges; SetOwner lets a
	// multi-tenant host attribute paging traffic per enclave.
	owner epc.OwnerID

	pageFaults uint64

	// tracer records paging events with cycle timestamps; nil (a no-op)
	// unless SetTelemetry attached a registry with tracing enabled.
	tracer *telemetry.Tracer
}

// New returns a memory system with the testbed geometry: 8 MB LLC, MEE
// over the enclave region, and a 93 MB EPC.
func New(rng *sim.RNG) *System {
	var sealKey [16]byte
	copy(sealKey[:], "epc-paging-seal0")
	return &System{
		LLC: cache.New(cache.LLCConfig),
		MEE: mee.NewCostModel(),
		EPC: epc.NewManager(epc.DefaultCapacityBytes, sealKey),
		rng: rng,
	}
}

// NewWithEPC returns a memory system with a custom EPC capacity, used by
// the paging experiments.
func NewWithEPC(rng *sim.RNG, epcBytes int) *System {
	s := New(rng)
	var sealKey [16]byte
	copy(sealKey[:], "epc-paging-seal0")
	s.EPC = epc.NewManager(epcBytes, sealKey)
	return s
}

// IsEnclave reports whether an address lies in the encrypted enclave
// region.
func (s *System) IsEnclave(addr uint64) bool { return addr >= EnclaveBase }

// lineIndex returns the MEE line index for an enclave address.
func lineIndex(addr uint64) uint64 { return (addr - EnclaveBase) / LineSize }

// page returns the EPC page index for an enclave address.
func page(addr uint64) uint64 { return (addr - EnclaveBase) / epc.PageSize }

// PageFaults returns the cumulative number of EPC page faults charged.
func (s *System) PageFaults() uint64 { return s.pageFaults }

// SetTelemetry attaches the observability registry to the whole memory
// hierarchy: EPC fault/eviction counters, MEE tree-walk counters, and
// (when tracing is enabled) paging trace events.  A nil registry
// detaches everything.
func (s *System) SetTelemetry(reg *telemetry.Registry) {
	s.tracer = reg.Tracer()
	s.EPC.SetTelemetry(reg)
	s.MEE.SetTelemetry(reg)
}

// SetOwner sets the EPC owner ID stamped on every page this system
// touches from now on (owner 0, the default, is the anonymous
// single-enclave owner).
func (s *System) SetOwner(owner epc.OwnerID) { s.owner = owner }

// SetEPCStat attaches an EPC pressure observatory to the hierarchy: the
// collector becomes the EPC manager's observer and snapshots gain the
// MEE node-cache counters.  Call before the first enclave access.
func (s *System) SetEPCStat(c *epcstat.Collector) {
	c.Attach(s.EPC)
	c.SetMEEStats(s.MEE.NodeCacheStats)
}

// touchPage charges EPC paging cost for an enclave access.
func (s *System) touchPage(clk *sim.Clock, addr uint64) {
	fault, cycles := s.EPC.TouchAs(s.owner, page(addr))
	if fault {
		s.pageFaults++
		if s.tracer != nil {
			// The fault span is trap + ELDU plus any EWBs it forced;
			// recover the eviction count from the charged cycles.
			evictions := uint64((cycles - epc.FaultCost) / epc.EWBCost)
			start := clk.Now()
			if s.tracer.Detailed() {
				// EWB sub-spans first: the profiler's tree builder adopts
				// already-emitted spans as children of the fault.
				for i := uint64(0); i < evictions; i++ {
					s.tracer.Emit(telemetry.KindEWB, "ewb",
						start+uint64(epc.FaultCost)+i*uint64(epc.EWBCost), uint64(epc.EWBCost), 0)
				}
			}
			s.tracer.Emit(telemetry.KindEPCFault, "epc_fault", start, uint64(cycles), evictions)
		}
		clk.AdvanceF(cycles)
	}
}

// memSpanStart opens a deep-tracing window around a memory operation:
// it records the clock and the MEE node-cache miss count so memSpanEnd
// can attribute the operation's cycles between raw cache movement and
// MEE integrity-tree work.
func (s *System) memSpanStart(clk *sim.Clock) (start, misses uint64) {
	start = clk.Now()
	_, misses = s.MEE.NodeCacheStats()
	return start, misses
}

// memSpanEnd closes a deep-tracing window: one KindMemAccess span whose
// Arg carries the MEE-extra cycles, preceded by an instant KindMEEMiss
// event when the operation walked the integrity tree.
func (s *System) memSpanEnd(clk *sim.Clock, name string, start, missesBefore uint64, meeExtra float64) {
	if _, m := s.MEE.NodeCacheStats(); m > missesBefore {
		// Anchored at the operation's end so event end-times stay
		// monotone within a clock domain (the tree builder's invariant).
		s.tracer.Emit(telemetry.KindMEEMiss, "mee-walk", clk.Now(), 0, m-missesBefore)
	}
	s.tracer.Emit(telemetry.KindMemAccess, name, start, clk.Since(start), uint64(meeExtra+0.5))
}

// Load performs one isolated (demand) load of the line containing addr.
func (s *System) Load(clk *sim.Clock, addr uint64) {
	deep := s.tracer.Detailed()
	var start, misses uint64
	if deep {
		start, misses = s.memSpanStart(clk)
	}
	var mee float64
	enc := s.IsEnclave(addr)
	if enc {
		s.touchPage(clk, addr)
	}
	hit, victim := s.LLC.Access(addr, false)
	if hit {
		clk.AdvanceF(demandHitCost)
	} else {
		lat := dramLoad.Sample(s.rng)
		if enc {
			mee = s.MEE.DemandLoadExtra(lineIndex(addr))
			lat += mee
		}
		if victim.Valid && victim.Dirty {
			lat += victimWB
		}
		clk.AdvanceF(lat)
	}
	if deep {
		s.memSpanEnd(clk, "load", start, misses, mee)
	}
}

// Store performs one isolated (demand) store to the line containing addr.
func (s *System) Store(clk *sim.Clock, addr uint64) {
	deep := s.tracer.Detailed()
	var start, misses uint64
	if deep {
		start, misses = s.memSpanStart(clk)
	}
	var mee float64
	enc := s.IsEnclave(addr)
	if enc {
		s.touchPage(clk, addr)
	}
	hit, victim := s.LLC.Access(addr, true)
	if hit {
		clk.AdvanceF(demandHitCost)
	} else {
		lat := dramStore.Sample(s.rng)
		if enc {
			mee = s.MEE.DemandStoreExtra(lineIndex(addr))
			lat += mee
		}
		if victim.Valid && victim.Dirty {
			lat += victimWB
		}
		clk.AdvanceF(lat)
	}
	if deep {
		s.memSpanEnd(clk, "store", start, misses, mee)
	}
}

// StreamRead charges a consecutive, prefetched read sweep over
// [addr, addr+size).
func (s *System) StreamRead(clk *sim.Clock, addr, size uint64) {
	if size == 0 {
		return
	}
	deep := s.tracer.Detailed()
	var start, misses uint64
	if deep {
		start, misses = s.memSpanStart(clk)
	}
	var mee float64
	enc := s.IsEnclave(addr)
	footprint := int((size + LineSize - 1) / LineSize)
	for a := s.LLC.LineAddr(addr); a < addr+size; a += LineSize {
		if enc {
			s.touchPage(clk, a)
		}
		hit, victim := s.LLC.Access(a, false)
		if hit {
			clk.AdvanceF(streamHitCost)
			continue
		}
		lat := float64(streamLine)
		if enc {
			extra := s.MEE.StreamLoadExtra(lineIndex(a), footprint)
			mee += extra
			lat += extra
		}
		if victim.Valid && victim.Dirty {
			lat += victimWB
		}
		clk.AdvanceF(lat)
	}
	if deep {
		s.memSpanEnd(clk, "stream-read", start, misses, mee)
	}
}

// StreamWrite charges a consecutive store sweep over [addr, addr+size):
// read-for-ownership fills pipelined behind the stores.
func (s *System) StreamWrite(clk *sim.Clock, addr, size uint64) {
	if size == 0 {
		return
	}
	deep := s.tracer.Detailed()
	var start, misses uint64
	if deep {
		start, misses = s.memSpanStart(clk)
	}
	var mee float64
	enc := s.IsEnclave(addr)
	footprint := int((size + LineSize - 1) / LineSize)
	for a := s.LLC.LineAddr(addr); a < addr+size; a += LineSize {
		if enc {
			s.touchPage(clk, a)
		}
		hit, victim := s.LLC.Access(a, true)
		if hit {
			clk.AdvanceF(streamHitCost)
			continue
		}
		lat := float64(streamRFO)
		if enc {
			extra := s.MEE.StreamStoreExtra(lineIndex(a), footprint)
			mee += extra
			lat += extra
		}
		if victim.Valid && victim.Dirty {
			lat += victimWB
		}
		clk.AdvanceF(lat)
	}
	if deep {
		s.memSpanEnd(clk, "stream-write", start, misses, mee)
	}
}

// Copy charges an optimized memcpy of size bytes from src to dst: the
// compute cost plus a read sweep of the source and a store sweep of the
// destination.
func (s *System) Copy(clk *sim.Clock, dst, src, size uint64) {
	clk.AdvanceF(float64(size) * CopyPerByte)
	s.StreamRead(clk, src, size)
	s.StreamWrite(clk, dst, size)
}

// MemsetByteWise charges the SGX SDK's proprietary byte-wise memset — the
// pathologically slow zeroing the paper blames for the cost of the `out`
// buffer option (Sections 3.2.1 and 3.3).
func (s *System) MemsetByteWise(clk *sim.Clock, addr, size uint64) {
	clk.AdvanceF(float64(size) * MemsetPerByte)
	s.StreamWrite(clk, addr, size)
}

// MemsetFast charges a word-wide memset, the optimization the paper
// recommends the SDK adopt (Section 3.5, "Further optimizations").
func (s *System) MemsetFast(clk *sim.Clock, addr, size uint64) {
	clk.AdvanceF(float64(size) * CopyPerByte)
	s.StreamWrite(clk, addr, size)
}

// CopyAVX charges an AVX-accelerated memcpy, the wide-register variant the
// paper suggests for large buffer transfers (Section 3.5).
func (s *System) CopyAVX(clk *sim.Clock, dst, src, size uint64) {
	clk.AdvanceF(float64(size) * CopyAVXPerByte)
	s.StreamRead(clk, src, size)
	s.StreamWrite(clk, dst, size)
}

// FlushRange issues clflush for every line in [addr, addr+size) and drains
// dirty write-backs, charging the caller (cost-free for the experiment
// harness's between-runs eviction: use EvictRange for that).
func (s *System) FlushRange(clk *sim.Clock, addr, size uint64) {
	if size == 0 {
		return
	}
	for a := s.LLC.LineAddr(addr); a < addr+size; a += LineSize {
		_, dirty := s.LLC.Flush(a)
		lat := float64(flushLine)
		if dirty {
			lat += writebackLine
		}
		clk.AdvanceF(lat)
	}
}

// MFence charges a store fence.
func (s *System) MFence(clk *sim.Clock) { clk.AdvanceF(MFenceCost) }

// EvictRange silently removes [addr, addr+size) from the cache without
// charging anyone — the harness uses it to set up cache state between
// measurements, mirroring how the paper flushes buffers "prior to every
// single measurement" outside the timed region.
func (s *System) EvictRange(addr, size uint64) {
	if size == 0 {
		return
	}
	for a := s.LLC.LineAddr(addr); a < addr+size; a += LineSize {
		s.LLC.Flush(a)
	}
}

// EvictAll empties the whole LLC without charging cycles (the cold-cache
// experiments of Figure 2 flush the entire 8 MB LLC before each run,
// outside the timed region).
func (s *System) EvictAll() { s.LLC.FlushAll() }

package mem

import (
	"testing"

	"hotcalls/internal/sim"
)

// medianOf runs op under the paper's measurement methodology with a
// per-run setup step (not timed) and returns the median latency.
func medianOf(t *testing.T, runs int, setup func(s *System), op func(s *System, clk *sim.Clock)) float64 {
	t.Helper()
	rng := sim.NewRNG(1234)
	s := New(rng)
	res := sim.MeasureN(rng, runs, func() uint64 {
		setup(s)
		var clk sim.Clock
		op(s, &clk)
		return clk.Now()
	})
	return res.Sample.Median()
}

const (
	plainBuf   = PlainBase
	enclaveBuf = EnclaveBase
)

func within(t *testing.T, name string, got, want, tolerance float64) {
	t.Helper()
	if got < want*(1-tolerance) || got > want*(1+tolerance) {
		t.Errorf("%s = %.0f, want %.0f +/- %.0f%%", name, got, want, tolerance*100)
	}
}

// Table 1 row 7: consecutively reading a 2 KB buffer in chunks of 64 bits,
// evicted from LLC before each measurement: 1,124 encrypted / 727 plain.
func TestTable1Row7ConsecutiveRead(t *testing.T) {
	plain := medianOf(t, 3000,
		func(s *System) { s.EvictRange(plainBuf, 2048) },
		func(s *System, clk *sim.Clock) {
			s.StreamRead(clk, plainBuf, 2048)
			s.MFence(clk)
		})
	within(t, "plain 2KB read", plain, 727, 0.05)

	enc := medianOf(t, 3000,
		func(s *System) { s.EvictRange(enclaveBuf, 2048) },
		func(s *System, clk *sim.Clock) {
			s.StreamRead(clk, enclaveBuf, 2048)
			s.MFence(clk)
		})
	within(t, "encrypted 2KB read", enc, 1124, 0.08)
}

// Table 1 row 8: consecutively writing a 2 KB buffer, completed with
// clflush + mfence: 6,875 encrypted / 6,458 plain.
func TestTable1Row8ConsecutiveWrite(t *testing.T) {
	plain := medianOf(t, 2000,
		func(s *System) { s.EvictRange(plainBuf, 2048) },
		func(s *System, clk *sim.Clock) {
			s.StreamWrite(clk, plainBuf, 2048)
			s.FlushRange(clk, plainBuf, 2048)
			s.MFence(clk)
		})
	within(t, "plain 2KB write", plain, 6458, 0.05)

	enc := medianOf(t, 2000,
		func(s *System) { s.EvictRange(enclaveBuf, 2048) },
		func(s *System, clk *sim.Clock) {
			s.StreamWrite(clk, enclaveBuf, 2048)
			s.FlushRange(clk, enclaveBuf, 2048)
			s.MFence(clk)
		})
	within(t, "encrypted 2KB write", enc, 6875, 0.05)
}

// Table 1 row 9: single cache-load miss: 400 encrypted / 308 plain.
func TestTable1Row9CacheLoadMiss(t *testing.T) {
	plain := medianOf(t, 5000,
		func(s *System) { s.EvictRange(plainBuf, 64) },
		func(s *System, clk *sim.Clock) { s.Load(clk, plainBuf) })
	within(t, "plain load miss", plain, 308, 0.05)

	enc := medianOf(t, 5000,
		func(s *System) { s.EvictRange(enclaveBuf, 64) },
		func(s *System, clk *sim.Clock) { s.Load(clk, enclaveBuf) })
	within(t, "encrypted load miss", enc, 400, 0.05)
}

// Table 1 row 10: single cache-store miss: 575 encrypted / 481 plain.
func TestTable1Row10CacheStoreMiss(t *testing.T) {
	plain := medianOf(t, 5000,
		func(s *System) { s.EvictRange(plainBuf, 64) },
		func(s *System, clk *sim.Clock) { s.Store(clk, plainBuf) })
	within(t, "plain store miss", plain, 481, 0.05)

	enc := medianOf(t, 5000,
		func(s *System) { s.EvictRange(enclaveBuf, 64) },
		func(s *System, clk *sim.Clock) { s.Store(clk, enclaveBuf) })
	within(t, "encrypted store miss", enc, 575, 0.05)
}

func TestWarmHitsAreCheap(t *testing.T) {
	rng := sim.NewRNG(5)
	s := New(rng)
	var clk sim.Clock
	s.Load(&clk, plainBuf)
	warmStart := clk.Now()
	s.Load(&clk, plainBuf)
	if cost := clk.Now() - warmStart; cost > 20 {
		t.Fatalf("warm load cost = %d, want <= 20", cost)
	}
}

func TestStreamReadWarmIsCheap(t *testing.T) {
	rng := sim.NewRNG(6)
	s := New(rng)
	var clk sim.Clock
	s.StreamRead(&clk, plainBuf, 2048)
	cold := clk.Now()
	start := clk.Now()
	s.StreamRead(&clk, plainBuf, 2048)
	warm := clk.Now() - start
	if warm*5 > cold {
		t.Fatalf("warm sweep %d should be far below cold sweep %d", warm, cold)
	}
}

func TestEnclaveCostsMoreThanPlain(t *testing.T) {
	rng := sim.NewRNG(7)
	s := New(rng)
	var pc, ec sim.Clock
	s.EvictRange(plainBuf, 8192)
	s.StreamRead(&pc, plainBuf, 8192)
	s.EvictRange(enclaveBuf, 8192)
	// Warm the metadata cache once, then measure steady state.
	s.StreamRead(&ec, enclaveBuf, 8192)
	if ec.Now() <= pc.Now() {
		t.Fatalf("encrypted sweep %d should cost more than plain %d", ec.Now(), pc.Now())
	}
}

func TestPageFaultChargedOnce(t *testing.T) {
	rng := sim.NewRNG(8)
	s := New(rng)
	var clk sim.Clock
	s.Load(&clk, enclaveBuf)
	first := clk.Now()
	if first < 5000 {
		t.Fatalf("first enclave access should include a page fault, cost = %d", first)
	}
	start := clk.Now()
	s.Load(&clk, enclaveBuf+64)
	if cost := clk.Now() - start; cost > 1000 {
		t.Fatalf("second access on same page should not fault, cost = %d", cost)
	}
	if s.PageFaults() != 1 {
		t.Fatalf("page faults = %d, want 1", s.PageFaults())
	}
}

func TestEPCOvercommitThrashes(t *testing.T) {
	rng := sim.NewRNG(9)
	s := NewWithEPC(rng, 16*4096) // 16-page EPC
	// Sweep 20 pages repeatedly: every access beyond capacity faults.
	var clk sim.Clock
	for sweep := 0; sweep < 3; sweep++ {
		for p := uint64(0); p < 20; p++ {
			s.Load(&clk, EnclaveBase+p*4096)
		}
	}
	if s.PageFaults() < 50 {
		t.Fatalf("page faults = %d, want heavy thrashing (~60)", s.PageFaults())
	}
}

func TestCopyChargesBothSides(t *testing.T) {
	rng := sim.NewRNG(10)
	s := New(rng)
	var clk sim.Clock
	s.EvictRange(plainBuf, 2048)
	s.Copy(&clk, plainBuf+1<<20, plainBuf, 2048)
	// compute 256 + src stream (~727) + dst RFO (~224)
	if clk.Now() < 800 || clk.Now() > 2000 {
		t.Fatalf("copy cost = %d, want ~1200", clk.Now())
	}
}

func TestMemsetByteWiseIsSlow(t *testing.T) {
	rng := sim.NewRNG(11)
	s := New(rng)
	var slow, fast sim.Clock
	s.MemsetByteWise(&slow, plainBuf, 2048)
	s.MemsetFast(&fast, plainBuf, 2048)
	if slow.Now() < 2048 {
		t.Fatalf("byte-wise memset = %d, want >= 2048", slow.Now())
	}
	if fast.Now()*3 > slow.Now() {
		t.Fatalf("fast memset %d should be far below byte-wise %d", fast.Now(), slow.Now())
	}
}

func TestEvictRangeIsFree(t *testing.T) {
	rng := sim.NewRNG(12)
	s := New(rng)
	var clk sim.Clock
	s.StreamWrite(&clk, plainBuf, 2048)
	before := clk.Now()
	s.EvictRange(plainBuf, 2048)
	if clk.Now() != before {
		t.Fatal("EvictRange must not charge cycles")
	}
}

func TestZeroSizeOpsAreFree(t *testing.T) {
	rng := sim.NewRNG(13)
	s := New(rng)
	var clk sim.Clock
	s.StreamRead(&clk, plainBuf, 0)
	s.StreamWrite(&clk, plainBuf, 0)
	s.FlushRange(&clk, plainBuf, 0)
	if clk.Now() != 0 {
		t.Fatalf("zero-size ops charged %d cycles", clk.Now())
	}
}

func TestIsEnclave(t *testing.T) {
	s := New(sim.NewRNG(14))
	if s.IsEnclave(PlainBase) {
		t.Fatal("plain address classified as enclave")
	}
	if !s.IsEnclave(EnclaveBase + 100) {
		t.Fatal("enclave address not classified")
	}
}

func TestDirtyVictimWritebackCharged(t *testing.T) {
	rng := sim.NewRNG(21)
	s := New(rng)
	// Dirty a line, then force its eviction through set pressure and
	// confirm the miss that evicts it costs more than one that does not.
	base := PlainBase + uint64(1<<26)
	setStride := uint64(8192 * 64) // same set in the 8192-set LLC
	s.Store(&sim.Clock{}, base)    // dirty line in some set
	var cleanClk, dirtyClk sim.Clock
	// Fill the set with clean lines.
	for w := uint64(1); w <= 15; w++ {
		s.Load(&cleanClk, base+w*setStride)
	}
	costBefore := dirtyClk.Now()
	s.Load(&dirtyClk, base+16*setStride) // evicts the dirty LRU line
	if dirtyClk.Now() == costBefore {
		t.Fatal("eviction charged nothing")
	}
}

func TestStreamSpanningPagesFaultsOncePerPage(t *testing.T) {
	rng := sim.NewRNG(22)
	s := NewWithEPC(rng, 64*4096)
	var clk sim.Clock
	s.StreamRead(&clk, EnclaveBase, 3*4096)
	if got := s.PageFaults(); got != 3 {
		t.Fatalf("page faults = %d, want 3 (one per page)", got)
	}
	var warm sim.Clock
	s.StreamRead(&warm, EnclaveBase, 3*4096)
	if got := s.PageFaults(); got != 3 {
		t.Fatalf("resident sweep faulted again: %d", got)
	}
}

package telemetry

import (
	"strings"
	"sync"
	"testing"
)

func TestGaugeBasic(t *testing.T) {
	r := New()
	g := r.Gauge("queue_depth")
	g.Set(5)
	g.Add(3)
	g.Dec()
	if got := g.Load(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
	g.Add(-10)
	if got := g.Load(); got != -3 {
		t.Fatalf("gauge should go negative: %d, want -3", got)
	}
	if r.Gauge("queue_depth") != g {
		t.Fatal("same name should return same gauge")
	}
	if g.Name() != "queue_depth" {
		t.Fatalf("name = %q", g.Name())
	}
}

func TestGaugeNilIsNoOp(t *testing.T) {
	var r *Registry
	g := r.Gauge("x")
	g.Set(9)
	g.Inc()
	g.Dec()
	g.Add(3)
	if g.Load() != 0 || g.Name() != "" {
		t.Fatal("nil gauge should be inert")
	}
	if len(r.Snapshot().Gauges) != 0 {
		t.Fatal("nil registry snapshot should have no gauges")
	}
}

func TestGaugeSnapshotAndExport(t *testing.T) {
	r := New()
	r.Gauge(MetricEPCResident).Set(23)
	r.Gauge(MetricPendingDepth).Set(2)
	snap := r.Snapshot()
	if snap.Gauges[MetricEPCResident] != 23 || snap.Gauges[MetricPendingDepth] != 2 {
		t.Fatalf("gauge snapshot wrong: %v", snap.Gauges)
	}
	// Snapshot is decoupled from later writes.
	r.Gauge(MetricEPCResident).Set(99)
	if snap.Gauges[MetricEPCResident] != 23 {
		t.Fatal("snapshot mutated by later writes")
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE epc_resident_pages gauge",
		"epc_resident_pages 99",
		"# TYPE hotcall_pending_depth gauge",
		"hotcall_pending_depth 2",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus dump missing %q:\n%s", want, out)
		}
	}
}

func TestGaugeConcurrent(t *testing.T) {
	r := New()
	g := r.Gauge("depth")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				g.Inc()
				g.Dec()
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			_ = r.Snapshot()
		}
	}()
	wg.Wait()
	<-done
	if got := g.Load(); got != 0 {
		t.Fatalf("balanced inc/dec should net 0, got %d", got)
	}
}

func TestRegisterStandardGauges(t *testing.T) {
	r := New()
	RegisterStandard(r)
	snap := r.Snapshot()
	for _, name := range standardGauges {
		if _, ok := snap.Gauges[name]; !ok {
			t.Fatalf("standard gauge %s not registered", name)
		}
	}
}

func TestHistogramSnapshotSub(t *testing.T) {
	r := New()
	h := r.Histogram("lat")
	h.Observe(600)
	h.Observe(700)
	before := h.Snapshot()
	h.Observe(5000)
	h.Observe(6000)
	h.Observe(7000)
	after := h.Snapshot()
	d := after.Sub(before)
	if d.Count != 3 || d.Sum != 18000 {
		t.Fatalf("interval count=%d sum=%d, want 3/18000", d.Count, d.Sum)
	}
	// The interval's quantiles see only the new observations.
	if q := d.Quantile(0.50); q < 4096 || q > 8191 {
		t.Fatalf("interval p50 = %d, want within [4096,8191]", q)
	}
	// Degenerate direction: subtracting a later snapshot clamps to empty.
	if rev := before.Sub(after); rev.Count != 0 || rev.Sum != 0 {
		t.Fatalf("reversed Sub should clamp to empty, got %+v", rev)
	}
}

package telemetry

import "sync"

// Kind classifies a boundary event for the tracer and the Chrome trace
// exporter (which groups kinds onto named rows).
type Kind uint8

// Boundary event kinds, covering every crossing the stack can make.
const (
	KindEcall    Kind = iota // SDK ecall span (EENTER..EEXIT)
	KindOcall                // SDK ocall span (EEXIT..ERESUME)
	KindHotECall             // HotCall ecall span (shared-memory protocol)
	KindHotOCall             // HotCall ocall span
	KindFallback             // HotCall timeout -> SDK fallback taken
	KindEEnter               // EENTER leaf instruction
	KindEExit                // EEXIT leaf instruction
	KindEResume              // ERESUME leaf instruction
	KindAEX                  // asynchronous exit
	KindEPCFault             // EPC page fault: trap + ELDU (+ EWBs, in Arg)
	KindEWB                  // EPC eviction write-back
	KindMEEMiss              // MEE tree-cache miss burst (count in Arg)
	KindMarshal              // argument staging / copy-out phase of a call
	KindSpin                 // HotCall shared-memory sync (spin-wait) phase
	KindHandler              // enclave-side handler body of a HotCall
	KindMemAccess            // memory operation (MEE extra cycles in Arg)
)

// String returns the kind's row label for trace viewers.
func (k Kind) String() string {
	switch k {
	case KindEcall:
		return "ecall"
	case KindOcall:
		return "ocall"
	case KindHotECall:
		return "hot-ecall"
	case KindHotOCall:
		return "hot-ocall"
	case KindFallback:
		return "fallback"
	case KindEEnter:
		return "eenter"
	case KindEExit:
		return "eexit"
	case KindEResume:
		return "eresume"
	case KindAEX:
		return "aex"
	case KindEPCFault:
		return "epc-fault"
	case KindEWB:
		return "ewb"
	case KindMEEMiss:
		return "mee-miss"
	case KindMarshal:
		return "marshal"
	case KindSpin:
		return "spin"
	case KindHandler:
		return "handler"
	case KindMemAccess:
		return "mem"
	}
	return "event"
}

// Event is one recorded boundary crossing.  TS and Dur are simulated
// cycles; Dur is zero for instantaneous events.  Arg carries a
// kind-specific detail (evictions forced by a fault, nodes missed in a
// tree walk).
type Event struct {
	Kind Kind
	Name string
	TS   uint64
	Dur  uint64
	Arg  uint64
}

// Tracer is a bounded ring buffer of boundary events.  When the ring
// fills, the oldest events are overwritten — the tail of a run is what a
// trace viewer wants.  A nil *Tracer is a valid disabled tracer.
//
// Unlike counters and histograms, Emit serialises writers with a mutex:
// tracing is opt-in, each event is a multi-word record, and the
// single-threaded discrete-event simulations never contend on it.
type Tracer struct {
	mu     sync.Mutex
	events []Event
	next   uint64 // total events ever emitted
	detail bool   // deep mode: per-phase and per-memory-access events
}

// NewTracer returns a tracer holding at most capacity events.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = 1 << 16
	}
	return &Tracer{events: make([]Event, capacity)}
}

// NewDetailedTracer returns a tracer in deep mode: instrumented code
// additionally emits marshalling, spin-wait, handler, and per-memory-
// operation events, enough for the profiler (internal/profile) to
// attribute every cycle of a call.  Deep traces are ~20x denser than the
// default boundary traces; size the ring accordingly.
func NewDetailedTracer(capacity int) *Tracer {
	t := NewTracer(capacity)
	t.detail = true
	return t
}

// Detailed reports whether deep (per-phase, per-memory-access) events
// should be emitted.  False on a nil or default tracer, so coarse
// boundary tracing keeps its original event stream.
func (t *Tracer) Detailed() bool { return t != nil && t.detail }

// Emit records one event.
func (t *Tracer) Emit(kind Kind, name string, ts, dur, arg uint64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.events[t.next%uint64(len(t.events))] = Event{Kind: kind, Name: name, TS: ts, Dur: dur, Arg: arg}
	t.next++
	t.mu.Unlock()
}

// Events returns the retained events, oldest first.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.next
	cap64 := uint64(len(t.events))
	if n <= cap64 {
		out := make([]Event, n)
		copy(out, t.events[:n])
		return out
	}
	out := make([]Event, cap64)
	start := n % cap64
	copy(out, t.events[start:])
	copy(out[cap64-start:], t.events[:start])
	return out
}

// Dropped returns how many events were overwritten by ring wrap-around.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if n, c := t.next, uint64(len(t.events)); n > c {
		return n - c
	}
	return 0
}

package telemetry

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// histBuckets is the number of log2 latency buckets.  Bucket i counts
// observations v with bits.Len64(v) == i, i.e. v in [2^(i-1), 2^i - 1]
// (bucket 0 holds exactly v == 0).  65 buckets cover the full uint64
// cycle range, so no observation is ever dropped.
const histBuckets = 65

// Histogram is a fixed-bucket log2 cycle-latency histogram.  Observe is
// two atomic adds and takes no locks; a nil *Histogram is a valid
// disabled histogram.  Log2 buckets match how the paper's latencies
// spread — the interesting boundaries (620, 1400, 8640, 14000 cycles)
// land in distinct buckets while one histogram still spans from a cache
// hit to a paging storm.
type Histogram struct {
	name    string
	buckets [histBuckets]atomic.Uint64
	sum     atomic.Uint64
	ex      atomic.Pointer[exemplarSet]
}

// exemplarSet is the optional per-bucket exemplar store: the trace ID
// and value of the last exemplar-tagged observation to land in each
// bucket.  The two words are stored independently, so a reader racing a
// writer can pair a trace ID with the previous value — exemplars are
// best-effort debugging handles, not ledger entries, and the flight
// recorder resolves the trace ID to the authoritative record anyway.
type exemplarSet struct {
	trace [histBuckets]atomic.Uint64
	val   [histBuckets]atomic.Uint64
}

// BucketExemplar is one bucket's exemplar in a snapshot: the last trace
// ID observed into the bucket and the value it carried.
type BucketExemplar struct {
	Bucket  int    `json:"bucket"`
	TraceID uint64 `json:"trace_id"`
	Value   uint64 `json:"value"`
}

// EnableExemplars attaches the per-bucket exemplar store (idempotent,
// safe at any time: the store is published through an atomic pointer).
// Returns the histogram for chaining; a nil histogram stays nil.
func (h *Histogram) EnableExemplars() *Histogram {
	if h == nil {
		return nil
	}
	if h.ex.Load() == nil {
		h.ex.CompareAndSwap(nil, new(exemplarSet))
	}
	return h
}

// ObserveExemplar records one observation tagged with a trace ID: the
// bucket's exemplar words are overwritten so each bucket always names a
// *recent* concrete call — the link from a histogram tail to a flight
// record.  A zero trace ID records the observation without touching the
// exemplar (and so does a histogram without EnableExemplars).
func (h *Histogram) ObserveExemplar(v, traceID uint64) {
	if h == nil {
		return
	}
	b := bucketOf(v)
	h.buckets[b].Add(1)
	h.sum.Add(v)
	if traceID == 0 {
		return
	}
	if ex := h.ex.Load(); ex != nil {
		ex.val[b].Store(v)
		ex.trace[b].Store(traceID)
	}
}

// bucketOf returns the bucket index for an observation.
func bucketOf(v uint64) int { return bits.Len64(v) }

// BucketUpper returns the inclusive upper bound of bucket i, or
// math.MaxUint64 for the last bucket.
func BucketUpper(i int) uint64 {
	if i <= 0 {
		return 0
	}
	if i >= 64 {
		return math.MaxUint64
	}
	return 1<<uint(i) - 1
}

// Observe records one latency observation in cycles.
func (h *Histogram) Observe(cycles uint64) {
	if h == nil {
		return
	}
	h.buckets[bucketOf(cycles)].Add(1)
	h.sum.Add(cycles)
}

// ObserveSince records the elapsed cycles between two clock readings.
func (h *Histogram) ObserveSince(start, now uint64) { h.Observe(now - start) }

// Name returns the histogram's registry name.
func (h *Histogram) Name() string {
	if h == nil {
		return ""
	}
	return h.name
}

// HistogramSnapshot is a point-in-time copy of a histogram, mergeable
// with snapshots of other shards or processes.  Exemplars is nil unless
// the histogram had EnableExemplars and at least one tagged observation;
// it lists only buckets holding an exemplar, in bucket order.
type HistogramSnapshot struct {
	Buckets   [histBuckets]uint64
	Sum       uint64
	Count     uint64
	Exemplars []BucketExemplar
}

// Snapshot atomically reads every bucket.  On a nil histogram it returns
// the zero snapshot.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	if h == nil {
		return s
	}
	for i := range h.buckets {
		n := h.buckets[i].Load()
		s.Buckets[i] = n
		s.Count += n
	}
	s.Sum = h.sum.Load()
	if ex := h.ex.Load(); ex != nil {
		for i := range ex.trace {
			if id := ex.trace[i].Load(); id != 0 {
				s.Exemplars = append(s.Exemplars, BucketExemplar{Bucket: i, TraceID: id, Value: ex.val[i].Load()})
			}
		}
	}
	return s
}

// Sub returns the interval histogram between an earlier snapshot o and
// this one: per-bucket differences, clamped at zero so a reset or a
// mismatched pair degrades to an empty interval instead of wrapping.
// This is how the monitor turns two cumulative snapshots into the
// latency distribution of just the sampling window.
func (s HistogramSnapshot) Sub(o HistogramSnapshot) HistogramSnapshot {
	var d HistogramSnapshot
	for i := range s.Buckets {
		if s.Buckets[i] > o.Buckets[i] {
			d.Buckets[i] = s.Buckets[i] - o.Buckets[i]
			d.Count += d.Buckets[i]
		}
	}
	if s.Sum > o.Sum {
		d.Sum = s.Sum - o.Sum
	}
	return d
}

// Merge folds another snapshot into this one.
func (s *HistogramSnapshot) Merge(o HistogramSnapshot) {
	for i := range s.Buckets {
		s.Buckets[i] += o.Buckets[i]
	}
	s.Sum += o.Sum
	s.Count += o.Count
}

// Mean returns the average observation, or 0 on an empty snapshot.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile returns an estimate of the q-th quantile (0 <= q <= 1) by
// linear interpolation inside the log2 bucket the target rank falls in:
// the rank's fractional position among the bucket's observations maps
// onto the bucket's value range [lower, upper].  This keeps the estimate
// within one bucket of the true order statistic while avoiding the
// systematic upward bias of reporting bucket upper bounds (a p50 of
// 8,640-cycle ecalls reports ~8.7k, not 16,383).  q is clamped into
// [0, 1] — without the clamp a negative q converts to a huge uint64 rank
// and silently reports the maximum.  Returns 0 on an empty snapshot; a
// single-observation snapshot returns that observation exactly (Sum).
func (s HistogramSnapshot) Quantile(q float64) uint64 {
	if s.Count == 0 {
		return 0
	}
	if s.Count == 1 {
		return s.Sum
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(s.Count))
	if rank >= s.Count {
		rank = s.Count - 1
	}
	var seen uint64
	for i, n := range s.Buckets {
		if n == 0 {
			continue
		}
		if seen+n <= rank {
			seen += n
			continue
		}
		lower := float64(BucketUpper(i-1)) + 1
		if i == 0 {
			return 0 // bucket 0 holds exactly v == 0
		}
		upper := float64(BucketUpper(i))
		if i >= 64 {
			// Open-ended top bucket: no finite width to interpolate over.
			return BucketUpper(i)
		}
		// Midpoint convention: the k-th of n observations sits at
		// fraction (k + 0.5) / n of the bucket's value range.
		frac := (float64(rank-seen) + 0.5) / float64(n)
		return uint64(lower + frac*(upper-lower))
	}
	return BucketUpper(histBuckets - 1)
}

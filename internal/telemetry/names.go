package telemetry

// Standard metric names used by the instrumented stack.  Centralising
// them here keeps the layers (sgx, sdk, core, epc, mee, apps) agreeing on
// spelling, and lets front ends pre-register the set so a dump always
// shows the whole boundary picture even when a run exercised only part
// of it.
const (
	// Boundary-crossing counters.
	MetricEcalls           = "sdk_ecalls_total"
	MetricOcalls           = "sdk_ocalls_total"
	MetricHotECalls        = "hotcall_ecalls_total"
	MetricHotOCalls        = "hotcall_ocalls_total"
	MetricHotCallRequests  = "hotcall_requests_total"
	MetricHotCallTimeouts  = "hotcall_timeouts_total"
	MetricHotCallFallbacks = "hotcall_fallbacks_total"

	// Leaf-instruction counters.
	MetricEEnter = "sgx_eenter_total"
	MetricEExit  = "sgx_eexit_total"
	MetricResume = "sgx_eresume_total"
	MetricAEX    = "sgx_aex_total"

	// Paging and MEE counters.
	MetricEPCFaults    = "epc_faults_total"    // ELDU: trap + decrypt + verify + install
	MetricEPCEvictions = "epc_evictions_total" // EWB: encrypt + MAC + write-out
	MetricMEENodeHits  = "mee_node_cache_hits_total"
	MetricMEENodeMiss  = "mee_node_cache_misses_total"

	// Cycle-latency histograms.
	MetricEcallCycles   = "ecall_cycles"
	MetricOcallCycles   = "ocall_cycles"
	MetricHotCallCycles = "hotcall_cycles"
)

// standardCounters and standardHistograms are the names RegisterStandard
// pre-creates.
var standardCounters = []string{
	MetricEcalls, MetricOcalls, MetricHotECalls, MetricHotOCalls,
	MetricHotCallRequests, MetricHotCallTimeouts, MetricHotCallFallbacks,
	MetricEEnter, MetricEExit, MetricResume, MetricAEX,
	MetricEPCFaults, MetricEPCEvictions, MetricMEENodeHits, MetricMEENodeMiss,
}

var standardHistograms = []string{
	MetricEcallCycles, MetricOcallCycles, MetricHotCallCycles,
}

// RegisterStandard pre-creates the standard boundary metrics so exports
// always include the full set (at zero when untouched).  Safe on nil.
func RegisterStandard(r *Registry) {
	for _, name := range standardCounters {
		r.Counter(name)
	}
	for _, name := range standardHistograms {
		r.Histogram(name)
	}
}

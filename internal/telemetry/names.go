package telemetry

// Standard metric names used by the instrumented stack.  Centralising
// them here keeps the layers (sgx, sdk, core, epc, mee, apps) agreeing on
// spelling, and lets front ends pre-register the set so a dump always
// shows the whole boundary picture even when a run exercised only part
// of it.
const (
	// Boundary-crossing counters.
	MetricEcalls           = "sdk_ecalls_total"
	MetricOcalls           = "sdk_ocalls_total"
	MetricHotECalls        = "hotcall_ecalls_total"
	MetricHotOCalls        = "hotcall_ocalls_total"
	MetricHotCallRequests  = "hotcall_requests_total"
	MetricHotCallTimeouts  = "hotcall_timeouts_total"
	MetricHotCallFallbacks = "hotcall_fallbacks_total"

	// Leaf-instruction counters.
	MetricEEnter = "sgx_eenter_total"
	MetricEExit  = "sgx_eexit_total"
	MetricResume = "sgx_eresume_total"
	MetricAEX    = "sgx_aex_total"

	// Paging and MEE counters.
	MetricEPCFaults     = "epc_faults_total"     // ELDU: trap + decrypt + verify + install
	MetricEPCEvictions  = "epc_evictions_total"  // EWB: encrypt + MAC + write-out
	MetricEPCWritebacks = "epc_writebacks_total" // dirty EWBs only: evictions that sealed content
	MetricMEENodeHits   = "mee_node_cache_hits_total"
	MetricMEENodeMiss   = "mee_node_cache_misses_total"

	// Responder busy-wait economics (Section 4.2, "Maximizing
	// utilization"): every poll burns cycles on the dedicated core;
	// polls that found no work are the spin waste the monitor budgets.
	MetricResponderPolls    = "hotcall_responder_polls_total"
	MetricResponderExecutes = "hotcall_responder_executes_total"
	MetricResponderSleeps   = "hotcall_responder_sleeps_total"
	MetricSpinCycles        = "hotcall_spin_cycles_total"

	// Cycle-latency histograms.
	MetricEcallCycles   = "ecall_cycles"
	MetricOcallCycles   = "ocall_cycles"
	MetricHotCallCycles = "hotcall_cycles"

	// Adaptive responder-pool fabric (Section 4.2's multi-requester
	// story): scale decisions and occupancy, exported so the monitor can
	// flag a saturated pool.
	MetricPoolScaleUps       = "hotcall_pool_scale_ups_total"
	MetricPoolScaleDowns     = "hotcall_pool_scale_downs_total"
	MetricPoolResponders     = "hotcall_pool_responders"      // live responder goroutines
	MetricPoolRespondersMax  = "hotcall_pool_responders_max"  // adaptive ceiling
	MetricPoolOccupancyMilli = "hotcall_pool_occupancy_milli" // window occupancy, thousandths

	// Point-in-time gauges.
	MetricPendingDepth = "hotcall_pending_depth" // in-flight async HotCall requests
	MetricEPCResident  = "epc_resident_pages"    // pages currently in the EPC
)

// PoolResponderOccupancyMetric names the per-responder occupancy gauge
// for responder i (thousandths, same unit as MetricPoolOccupancyMilli).
func PoolResponderOccupancyMetric(i int) string {
	return "hotcall_pool_responder_occupancy_milli_" + itoa(i)
}

// itoa is a tiny allocation-free-enough strconv.Itoa for small indices;
// metric names are built once at attach time, never on the hot path.
func itoa(i int) string {
	if i < 10 {
		return string([]byte{'0' + byte(i)})
	}
	return itoa(i/10) + itoa(i%10)
}

// standardCounters and standardHistograms are the names RegisterStandard
// pre-creates.
var standardCounters = []string{
	MetricEcalls, MetricOcalls, MetricHotECalls, MetricHotOCalls,
	MetricHotCallRequests, MetricHotCallTimeouts, MetricHotCallFallbacks,
	MetricEEnter, MetricEExit, MetricResume, MetricAEX,
	MetricEPCFaults, MetricEPCEvictions, MetricEPCWritebacks,
	MetricMEENodeHits, MetricMEENodeMiss,
	MetricResponderPolls, MetricResponderExecutes, MetricResponderSleeps,
	MetricSpinCycles,
	MetricPoolScaleUps, MetricPoolScaleDowns,
}

var standardHistograms = []string{
	MetricEcallCycles, MetricOcallCycles, MetricHotCallCycles,
}

var standardGauges = []string{
	MetricPendingDepth, MetricEPCResident,
	MetricPoolResponders, MetricPoolRespondersMax, MetricPoolOccupancyMilli,
}

// RegisterStandard pre-creates the standard boundary metrics so exports
// always include the full set (at zero when untouched).  Safe on nil.
func RegisterStandard(r *Registry) {
	for _, name := range standardCounters {
		r.Counter(name)
	}
	for _, name := range standardHistograms {
		r.Histogram(name)
	}
	for _, name := range standardGauges {
		r.Gauge(name)
	}
}

package telemetry

import (
	"net/http/httptest"
	"strings"
	"testing"
)

func TestExemplarDisabledByDefault(t *testing.T) {
	r := New()
	h := r.Histogram("lat")
	h.ObserveExemplar(100, 0xdead)
	snap := h.Snapshot()
	if snap.Count != 1 || snap.Sum != 100 {
		t.Fatalf("observation lost: count=%d sum=%d", snap.Count, snap.Sum)
	}
	if snap.Exemplars != nil {
		t.Fatalf("exemplars recorded without EnableExemplars: %+v", snap.Exemplars)
	}
}

func TestExemplarObserveAndSnapshot(t *testing.T) {
	r := New()
	h := r.Histogram("lat").EnableExemplars()
	h.EnableExemplars() // idempotent

	h.ObserveExemplar(100, 0xa)  // bucket bits.Len64(100) = 7
	h.ObserveExemplar(120, 0xb)  // same bucket: overwrites
	h.ObserveExemplar(5000, 0xc) // bucket 13
	h.ObserveExemplar(7000, 0)   // zero trace ID: counted, no exemplar change
	h.Observe(90)                // untagged path still works alongside

	snap := h.Snapshot()
	if snap.Count != 5 {
		t.Fatalf("count = %d, want 5", snap.Count)
	}
	if len(snap.Exemplars) != 2 {
		t.Fatalf("exemplars = %+v, want 2 entries", snap.Exemplars)
	}
	// Bucket order is ascending.
	if snap.Exemplars[0].TraceID != 0xb || snap.Exemplars[0].Value != 120 {
		t.Errorf("bucket 7 exemplar = %+v, want trace 0xb value 120", snap.Exemplars[0])
	}
	if snap.Exemplars[1].TraceID != 0xc || snap.Exemplars[1].Value != 5000 {
		t.Errorf("bucket 13 exemplar = %+v, want trace 0xc value 5000", snap.Exemplars[1])
	}
	if snap.Exemplars[0].Bucket >= snap.Exemplars[1].Bucket {
		t.Errorf("exemplar buckets out of order: %+v", snap.Exemplars)
	}
}

func TestExemplarNilHistogram(t *testing.T) {
	var h *Histogram
	if h.EnableExemplars() != nil {
		t.Fatal("nil histogram should stay nil through EnableExemplars")
	}
	h.ObserveExemplar(1, 2) // must not panic
}

func TestPrometheusExemplarFlag(t *testing.T) {
	r := New()
	h := r.Histogram("svc").EnableExemplars()
	h.ObserveExemplar(1000, 0xbeef)

	var plain, tagged strings.Builder
	if err := r.WritePrometheus(&plain); err != nil {
		t.Fatal(err)
	}
	if err := r.WritePrometheusWith(&tagged, PromOptions{Exemplars: true}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plain.String(), "trace_id") {
		t.Errorf("default exposition leaked exemplars:\n%s", plain.String())
	}
	want := `# {trace_id="0xbeef"} 1000`
	if !strings.Contains(tagged.String(), want) {
		t.Errorf("exemplar exposition missing %q:\n%s", want, tagged.String())
	}
}

func TestHandlerExemplarQueryParam(t *testing.T) {
	r := New()
	r.Histogram("svc").EnableExemplars().ObserveExemplar(64, 0x77)
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()

	get := func(url string) string {
		resp, err := srv.Client().Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var b strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			b.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return b.String()
	}
	if body := get(srv.URL + "/metrics"); strings.Contains(body, "trace_id") {
		t.Errorf("plain /metrics leaked exemplars:\n%s", body)
	}
	if body := get(srv.URL + "/metrics?exemplars=1"); !strings.Contains(body, `trace_id="0x77"`) {
		t.Errorf("?exemplars=1 missing annotation:\n%s", body)
	}
}

package telemetry

import (
	"testing"

	"hotcalls/internal/dist"
	"hotcalls/internal/sim"
)

// TestQuantileEdgeCases pins the clamping and degenerate-snapshot
// behaviour: out-of-range q must clamp instead of converting a negative
// float to a huge uint64 rank, and a single observation is reported
// exactly.
func TestQuantileEdgeCases(t *testing.T) {
	single := func(v uint64) HistogramSnapshot {
		h := &Histogram{}
		h.Observe(v)
		return h.Snapshot()
	}
	multi := func(vs ...uint64) HistogramSnapshot {
		h := &Histogram{}
		for _, v := range vs {
			h.Observe(v)
		}
		return h.Snapshot()
	}

	tests := []struct {
		name string
		snap HistogramSnapshot
		q    float64
		want uint64
		// exact: want is the exact answer; otherwise want bounds below
		// and wantHi bounds above.
		exact  bool
		wantHi uint64
	}{
		{name: "empty q=0.5", snap: HistogramSnapshot{}, q: 0.5, want: 0, exact: true},
		{name: "single exact q=0", snap: single(8640), q: 0, want: 8640, exact: true},
		{name: "single exact q=0.5", snap: single(8640), q: 0.5, want: 8640, exact: true},
		{name: "single exact q=1", snap: single(8640), q: 1, want: 8640, exact: true},
		{name: "single exact q=-3", snap: single(8640), q: -3, want: 8640, exact: true},
		{name: "single zero", snap: single(0), q: 0.5, want: 0, exact: true},
		{name: "negative q clamps to min bucket", snap: multi(100, 200, 40000), q: -0.5, want: 64, wantHi: 127},
		{name: "q=0 reports min bucket", snap: multi(100, 200, 40000), q: 0, want: 64, wantHi: 127},
		{name: "q>1 clamps to max bucket", snap: multi(100, 200, 40000), q: 2, want: 32768, wantHi: 65535},
		{name: "q=1 reports max bucket", snap: multi(100, 200, 40000), q: 1, want: 32768, wantHi: 65535},
	}
	for _, tc := range tests {
		got := tc.snap.Quantile(tc.q)
		if tc.exact {
			if got != tc.want {
				t.Errorf("%s: Quantile(%v) = %d, want %d", tc.name, tc.q, got, tc.want)
			}
			continue
		}
		if got < tc.want || got > tc.wantHi {
			t.Errorf("%s: Quantile(%v) = %d, want in [%d, %d]", tc.name, tc.q, got, tc.want, tc.wantHi)
		}
	}
}

// TestQuantileAgainstExact runs the log2 histogram and the dist reservoir
// over the same stream and checks every quantile estimate stays within
// one log2 bucket of the exact order statistic — the accuracy contract
// the interpolation comment claims.
func TestQuantileAgainstExact(t *testing.T) {
	rng := sim.NewRNG(99)
	h := &Histogram{}
	r := dist.NewRecorder(1 << 17) // keeps every sample: ExactQuantile is exact
	const n = 60000
	for i := 0; i < n; i++ {
		v := uint64(400 + rng.Intn(1200))
		switch rng.Intn(3) {
		case 0:
			v = uint64(8000 + rng.Intn(7000))
		case 1:
			v = uint64(rng.Intn(150))
		}
		h.Observe(v)
		r.Record(v)
	}
	snap := h.Snapshot()
	exactSnap := r.Snapshot()
	if exactSnap.Stride != 1 {
		t.Fatal("reservoir decimated; exact comparison invalid")
	}
	for _, q := range []float64{0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1} {
		est := snap.Quantile(q)
		exact := exactSnap.ExactQuantile(q)
		// One log2 bucket of slack: the estimate must land inside
		// [exact/2, exact*2] (plus absolute slack near zero).
		lo, hi := exact/2, exact*2+2
		if est < lo || est > hi {
			t.Errorf("q=%v: histogram estimate %d outside [%d, %d] around exact %d", q, est, lo, hi, exact)
		}
	}
}

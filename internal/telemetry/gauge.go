package telemetry

import "sync/atomic"

// Gauge is a point-in-time reading: queue depth, responder occupancy,
// EPC resident pages — values that go up and down, unlike the monotonic
// Counter.  Writers are expected to be few (one owner per gauge), so a
// single atomic slot suffices; there is no sharding.  A nil *Gauge is a
// valid disabled gauge: Set/Add are no-ops and Load returns 0, the same
// fast-path contract as Counter and Histogram.
type Gauge struct {
	name string
	v    atomic.Int64
}

// Set stores the current reading.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add moves the reading by d (negative to decrease).
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.v.Add(d)
}

// Inc increments the reading by one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec decrements the reading by one.
func (g *Gauge) Dec() { g.Add(-1) }

// Load returns the current reading.
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Name returns the gauge's registry name.
func (g *Gauge) Name() string {
	if g == nil {
		return ""
	}
	return g.name
}

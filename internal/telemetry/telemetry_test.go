package telemetry

import (
	"encoding/json"
	"math"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"hotcalls/internal/sim"
)

func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Add(5)
	c.Inc()
	if c.Load() != 0 {
		t.Fatal("nil counter should load 0")
	}
	h := r.Histogram("y")
	h.Observe(100)
	if s := h.Snapshot(); s.Count != 0 {
		t.Fatal("nil histogram should snapshot empty")
	}
	r.Tracer().Emit(KindAEX, "aex", 1, 0, 0)
	if ev := r.Tracer().Events(); ev != nil {
		t.Fatal("nil tracer should have no events")
	}
	snap := r.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Histograms) != 0 {
		t.Fatal("nil registry snapshot should be empty")
	}
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	RegisterStandard(r)
}

func TestCounterBasic(t *testing.T) {
	r := New()
	c := r.Counter("ops_total")
	for i := 0; i < 100; i++ {
		c.Inc()
	}
	c.Add(900)
	if got := c.Load(); got != 1000 {
		t.Fatalf("counter = %d, want 1000", got)
	}
	if r.Counter("ops_total") != c {
		t.Fatal("same name should return same counter")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := New()
	h := r.Histogram("lat_cycles")
	// 0 goes in bucket 0; 1 in bucket 1 (le 1); 620 in bucket 10 (le 1023).
	h.Observe(0)
	h.Observe(1)
	h.Observe(620)
	h.Observe(620)
	s := h.Snapshot()
	if s.Count != 4 || s.Sum != 1241 {
		t.Fatalf("count=%d sum=%d, want 4/1241", s.Count, s.Sum)
	}
	if s.Buckets[0] != 1 || s.Buckets[1] != 1 || s.Buckets[10] != 2 {
		t.Fatalf("bucket layout wrong: %v", s.Buckets[:12])
	}
	// Interpolated quantiles: the p99 rank (3 of 4) is the first of the
	// two observations in bucket [512,1023], so the midpoint convention
	// puts it 3/4 of the way through the bucket: 512 + 0.75*511 = 895.
	if got := s.Quantile(0.99); got != 895 {
		t.Fatalf("p99 = %d, want 895", got)
	}
	// The p50 rank lands at the first quarter of the same bucket —
	// 639, within one bucket of the true 620.
	if got := s.Quantile(0.50); got != 639 {
		t.Fatalf("p50 = %d, want 639", got)
	}
	if s.Mean() != 1241.0/4 {
		t.Fatalf("mean = %f", s.Mean())
	}
}

func TestBucketUpperBounds(t *testing.T) {
	if BucketUpper(0) != 0 || BucketUpper(1) != 1 || BucketUpper(10) != 1023 {
		t.Fatal("log2 bucket bounds wrong")
	}
	if BucketUpper(64) != math.MaxUint64 {
		t.Fatal("last bucket must cover MaxUint64")
	}
	// Every uint64 maps to a valid bucket with value <= upper bound.
	for _, v := range []uint64{0, 1, 2, 3, 1023, 1024, math.MaxUint64} {
		b := bucketOf(v)
		if b >= histBuckets {
			t.Fatalf("bucketOf(%d) = %d out of range", v, b)
		}
		if v > BucketUpper(b) {
			t.Fatalf("value %d above its bucket bound %d", v, BucketUpper(b))
		}
	}
}

func TestHistogramSnapshotMerge(t *testing.T) {
	r := New()
	a := r.Histogram("a")
	b := r.Histogram("b")
	a.Observe(100)
	b.Observe(200)
	b.Observe(300)
	sa, sb := a.Snapshot(), b.Snapshot()
	sa.Merge(sb)
	if sa.Count != 3 || sa.Sum != 600 {
		t.Fatalf("merged count=%d sum=%d", sa.Count, sa.Sum)
	}
}

// TestRegistrySnapshot is the satellite snapshot test: a populated
// registry snapshots exactly what was written, and the snapshot is
// decoupled from later writes.
func TestRegistrySnapshot(t *testing.T) {
	r := New()
	r.Counter(MetricEcalls).Add(7)
	r.Counter(MetricHotCallFallbacks).Inc()
	r.Histogram(MetricEcallCycles).Observe(8640)
	snap := r.Snapshot()
	if snap.Counters[MetricEcalls] != 7 {
		t.Fatalf("ecalls = %d, want 7", snap.Counters[MetricEcalls])
	}
	if snap.Counters[MetricHotCallFallbacks] != 1 {
		t.Fatal("fallbacks != 1")
	}
	h := snap.Histograms[MetricEcallCycles]
	if h.Count != 1 || h.Sum != 8640 {
		t.Fatalf("histogram snapshot %+v", h)
	}
	// Later writes must not leak into the captured snapshot.
	r.Counter(MetricEcalls).Add(100)
	r.Histogram(MetricEcallCycles).Observe(1)
	if snap.Counters[MetricEcalls] != 7 || snap.Histograms[MetricEcallCycles].Count != 1 {
		t.Fatal("snapshot mutated by later writes")
	}
}

// TestConcurrentWritersAndSnapshot is the satellite race test: parallel
// writers hammer counters, histograms, and the tracer while a reader
// snapshots and exports.  Run with -race.
func TestConcurrentWritersAndSnapshot(t *testing.T) {
	r := New()
	tr := r.EnableTracing(1 << 10)
	const writers = 8
	const perWriter = 5000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c := r.Counter(MetricHotCallRequests)
			h := r.Histogram(MetricHotCallCycles)
			for i := 0; i < perWriter; i++ {
				c.Inc()
				h.Observe(uint64(600 + i%100))
				if i%64 == 0 {
					tr.Emit(KindHotECall, "hot", uint64(i), 620, 0)
				}
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			snap := r.Snapshot()
			if snap.Counters[MetricHotCallRequests] > writers*perWriter {
				t.Error("counter overshot")
				return
			}
			var sb strings.Builder
			if err := r.WritePrometheus(&sb); err != nil {
				t.Error(err)
				return
			}
			// Race the exporters against live Emit traffic too: the
			// Chrome trace writer walks the ring under the same lock.
			sb.Reset()
			if err := r.WriteChromeTrace(&sb); err != nil {
				t.Error(err)
				return
			}
			_ = tr.Events()
			_ = tr.Dropped()
		}
	}()
	wg.Wait()
	<-done
	if got := r.Counter(MetricHotCallRequests).Load(); got != writers*perWriter {
		t.Fatalf("final count = %d, want %d", got, writers*perWriter)
	}
	snap := r.Histogram(MetricHotCallCycles).Snapshot()
	if snap.Count != writers*perWriter {
		t.Fatalf("histogram count = %d, want %d", snap.Count, writers*perWriter)
	}
}

func TestTracerRingWrap(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.Emit(KindEcall, "e", uint64(i), 1, 0)
	}
	ev := tr.Events()
	if len(ev) != 4 {
		t.Fatalf("retained %d events, want 4", len(ev))
	}
	for i, e := range ev {
		if e.TS != uint64(6+i) {
			t.Fatalf("event %d has ts %d, want %d (oldest-first after wrap)", i, e.TS, 6+i)
		}
	}
	if tr.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", tr.Dropped())
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := New()
	r.Counter(MetricEcalls).Add(3)
	r.Histogram(MetricEcallCycles).Observe(620)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE sdk_ecalls_total counter",
		"sdk_ecalls_total 3",
		"# TYPE ecall_cycles histogram",
		`ecall_cycles_bucket{le="1023"} 1`,
		`ecall_cycles_bucket{le="+Inf"} 1`,
		"ecall_cycles_sum 620",
		"ecall_cycles_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus dump missing %q:\n%s", want, out)
		}
	}
}

func TestWriteChromeTrace(t *testing.T) {
	r := New()
	tr := r.EnableTracing(16)
	tr.Emit(KindEcall, "ecall:empty", 1000, 8640, 0)
	tr.Emit(KindAEX, "aex", 5000, 0, 0)
	tr.Emit(KindEPCFault, "epc_fault", 6000, 5300, 2)
	var sb strings.Builder
	if err := r.WriteChromeTrace(&sb); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &decoded); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	var phases []string
	for _, e := range decoded.TraceEvents {
		phases = append(phases, e["ph"].(string))
	}
	joined := strings.Join(phases, "")
	if !strings.Contains(joined, "X") || !strings.Contains(joined, "i") || !strings.Contains(joined, "M") {
		t.Fatalf("expected complete, instant, and metadata events, got phases %v", phases)
	}
}

func TestMetricsHandler(t *testing.T) {
	r := New()
	r.Counter("memcached_requests_total").Add(42)
	rec := httptest.NewRecorder()
	Handler(r).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "memcached_requests_total 42") {
		t.Fatalf("handler response: %d %q", rec.Code, rec.Body.String())
	}
}

// TestQuantileMatchesSample cross-checks the log2-bucket interpolated
// quantiles against exact order statistics (sim.Sample.Percentile) on
// identical data.  Within-bucket interpolation assumes a uniform spread
// across the bucket, so uniform data must agree tightly.
func TestQuantileMatchesSample(t *testing.T) {
	r := New()
	h := r.Histogram("xval_cycles")
	var sample sim.Sample
	for i := 0; i < 10000; i++ {
		v := uint64(500 + (i*7919)%1500) // uniform-ish over [500, 2000)
		h.Observe(v)
		sample.Add(float64(v))
	}
	s := h.Snapshot()
	for _, tc := range []struct {
		q float64
		p float64
	}{{0.50, 50}, {0.95, 95}, {0.99, 99}} {
		got := float64(s.Quantile(tc.q))
		want := sample.Percentile(tc.p)
		if rel := math.Abs(got-want) / want; rel > 0.10 {
			t.Fatalf("q%.0f: histogram %.0f vs exact %.0f (%.1f%% off)", tc.p, got, want, rel*100)
		}
	}
	// Quantiles must be monotone in q and bracketed by the data range.
	prev := uint64(0)
	for q := 0.0; q <= 1.0; q += 0.05 {
		v := s.Quantile(q)
		if v < prev {
			t.Fatalf("quantile not monotone at q=%.2f: %d < %d", q, v, prev)
		}
		prev = v
	}
	if lo, hi := s.Quantile(0), s.Quantile(1); lo < 256 || hi > 2047 {
		t.Fatalf("quantile range [%d, %d] outside data buckets", lo, hi)
	}
}

// TestChromeTraceGolden is the export-determinism satellite: the Chrome
// trace of a fixed event stream must be byte-identical across calls and
// match the checked-in golden file (set UPDATE_GOLDEN=1 to regenerate).
func TestChromeTraceGolden(t *testing.T) {
	r := New()
	tr := r.EnableDeepTracing(32)
	tr.Emit(KindEEnter, "eenter", 1820, 3082, 1)
	tr.Emit(KindMemAccess, "load", 4902, 12, 0)
	tr.Emit(KindMarshal, "stage:ecall_in", 4914, 356, 0)
	tr.Emit(KindEcall, "ecall:ecall_in", 0, 9952, 0)
	tr.Emit(KindSpin, "hotcall-sync", 10000, 540, 0)
	tr.Emit(KindMEEMiss, "mee-walk", 11000, 0, 3)
	var a, b strings.Builder
	if err := r.WriteChromeTrace(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("Chrome trace export is not deterministic across calls")
	}
	golden := filepath.Join("testdata", "chrome_trace_golden.json")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(a.String()), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("golden file missing (run with UPDATE_GOLDEN=1): %v", err)
	}
	if a.String() != string(want) {
		t.Fatalf("Chrome trace drifted from golden file:\n got: %s\nwant: %s", a.String(), want)
	}
}

func TestRegisterStandard(t *testing.T) {
	r := New()
	RegisterStandard(r)
	snap := r.Snapshot()
	for _, name := range []string{MetricEcalls, MetricHotCallFallbacks, MetricAEX, MetricEPCFaults} {
		if _, ok := snap.Counters[name]; !ok {
			t.Fatalf("standard counter %s not registered", name)
		}
	}
	for _, name := range standardHistograms {
		if _, ok := snap.Histograms[name]; !ok {
			t.Fatalf("standard histogram %s not registered", name)
		}
	}
}

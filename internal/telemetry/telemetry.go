// Package telemetry is the observability subsystem: cycle-accurate
// counters, latency histograms, and boundary-event tracing for the whole
// enclave stack.  The paper's argument rests on seeing where cycles go at
// the enclave boundary (Figure 3's CDFs, Table 1's medians, the ocall
// breakdowns); this package makes the same visibility available on a live
// workload instead of only through one-shot bench aggregates.
//
// Design constraints, in order:
//
//  1. A disabled registry must cost (near) nothing.  Every handle type
//     (*Counter, *Histogram, *Tracer) is nil-safe: methods on a nil
//     receiver are no-ops that inline to a single branch.  Instrumented
//     code caches handles once at attach time and calls them
//     unconditionally, so the uninstrumented HotCall path stays at its
//     ~620-cycle budget (see BenchmarkCall / BenchmarkCallInstrumented in
//     internal/core).
//
//  2. The hot path takes no locks.  Counters are sharded atomics (one
//     cache line per shard); histograms are fixed log2-bucket atomic
//     arrays.  Only the tracer, which is opt-in and inherently
//     heavier-weight, serialises writers with a mutex around its ring.
//
//  3. Everything is mergeable and exportable: snapshots are plain
//     structs, and the registry renders Prometheus text exposition
//     (WritePrometheus) and Chrome trace_event JSON (WriteChromeTrace)
//     for flame-style inspection in chrome://tracing or Perfetto.
//
// Timestamps are simulated cycles from sim.Clock, converted to
// microseconds at the testbed frequency (sim.FrequencyHz) on export.
package telemetry

import (
	"sort"
	"sync"
)

// Registry holds named counters and histograms plus an optional tracer.
// A nil *Registry is a valid disabled registry: all accessors return nil
// handles whose methods are no-ops.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	tracer   *Tracer
}

// New returns an empty enabled registry (tracing off until EnableTracing).
func New() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.  On a nil
// registry it returns nil, which is a valid no-op counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{name: name}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.  On a nil
// registry it returns nil, which is a valid no-op gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{name: name}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named cycle histogram, creating it on first use.
// On a nil registry it returns nil, which is a valid no-op histogram.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{name: name}
		r.hists[name] = h
	}
	return h
}

// EnableTracing attaches a bounded ring-buffer tracer of the given
// capacity (in events) and returns it.  Calling it again replaces the
// ring.  Instrumented code re-reads the handle through Tracer(), so
// enable tracing before attaching the registry to a stack.
func (r *Registry) EnableTracing(capacity int) *Tracer {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.tracer = NewTracer(capacity)
	return r.tracer
}

// EnableDeepTracing attaches a detailed-mode tracer: instrumented code
// emits per-phase (marshal, spin, handler) and per-memory-operation
// events in addition to the boundary spans, which is what the profiler
// in internal/profile consumes.  Calling it again replaces the ring.
func (r *Registry) EnableDeepTracing(capacity int) *Tracer {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.tracer = NewDetailedTracer(capacity)
	return r.tracer
}

// Tracer returns the attached tracer, or nil when tracing is disabled or
// the registry itself is nil.  A nil *Tracer is a valid no-op tracer.
func (r *Registry) Tracer() *Tracer {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.tracer
}

// Snapshot is a point-in-time copy of every metric in the registry,
// safe to read while writers keep going.
type Snapshot struct {
	Counters   map[string]uint64
	Gauges     map[string]int64
	Histograms map[string]HistogramSnapshot
}

// Snapshot captures all counters, gauges, and histograms.  On a nil
// registry it returns an empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{
		Counters:   make(map[string]uint64),
		Gauges:     make(map[string]int64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	if r == nil {
		return snap
	}
	r.mu.Lock()
	counters := make([]*Counter, 0, len(r.counters))
	for _, c := range r.counters {
		counters = append(counters, c)
	}
	gauges := make([]*Gauge, 0, len(r.gauges))
	for _, g := range r.gauges {
		gauges = append(gauges, g)
	}
	hists := make([]*Histogram, 0, len(r.hists))
	for _, h := range r.hists {
		hists = append(hists, h)
	}
	r.mu.Unlock()
	for _, c := range counters {
		snap.Counters[c.name] = c.Load()
	}
	for _, g := range gauges {
		snap.Gauges[g.name] = g.Load()
	}
	for _, h := range hists {
		snap.Histograms[h.name] = h.Snapshot()
	}
	return snap
}

// sortedNames returns map keys in stable order for deterministic export.
func sortedNames[V any](m map[string]V) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

package telemetry

import (
	"sync/atomic"
	"unsafe"
)

// counterShards is the fan-out of one counter.  Eight cache-line-padded
// slots keep concurrent requester goroutines off each other's lines
// without making Load scans expensive.
const counterShards = 8

// shard is one padded counter slot: the value plus enough padding to fill
// a 64-byte cache line, so two shards never false-share.
type shard struct {
	v atomic.Uint64
	_ [56]byte
}

// Counter is a sharded, lock-free event counter.  A nil *Counter is a
// valid disabled counter: Add/Inc are no-ops and Load returns 0.  That is
// the whole fast-path story — instrumented code holds a *Counter that is
// nil when telemetry is off, and pays one predictable branch.
type Counter struct {
	name   string
	shards [counterShards]shard
}

// shardIndex picks a shard from the address of a stack variable.
// Goroutine stacks are disjoint, so concurrent writers spread across
// shards with no lock, no goroutine ID, and no per-goroutine state; a
// stack move just switches shards, which merging makes harmless.
func shardIndex() int {
	var b byte
	return int(uintptr(unsafe.Pointer(&b)) >> 10 & (counterShards - 1))
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.shards[shardIndex()].v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Load returns the current total across all shards.
func (c *Counter) Load() uint64 {
	if c == nil {
		return 0
	}
	var sum uint64
	for i := range c.shards {
		sum += c.shards[i].v.Load()
	}
	return sum
}

// Name returns the counter's registry name.
func (c *Counter) Name() string {
	if c == nil {
		return ""
	}
	return c.name
}

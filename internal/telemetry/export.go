package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"hotcalls/internal/sim"
)

// PromOptions tunes the Prometheus exposition.
type PromOptions struct {
	// Exemplars appends OpenMetrics-style exemplar annotations
	// (`# {trace_id="0x..."} value`) to bucket samples whose histogram
	// carries one.  Off by default: the 0.0.4 text format predates
	// exemplars, so plain scrapers get the plain exposition unless the
	// operator opts in.
	Exemplars bool
}

// WritePrometheus renders every counter and histogram in the Prometheus
// text exposition format (version 0.0.4): counters as `# TYPE x counter`
// samples, histograms as cumulative `_bucket{le="..."}` series plus
// `_sum` and `_count`.  Output is sorted by name so dumps diff cleanly.
// Safe on a nil registry (writes nothing).
func (r *Registry) WritePrometheus(w io.Writer) error {
	return r.WritePrometheusWith(w, PromOptions{})
}

// WritePrometheusWith is WritePrometheus with explicit options.
func (r *Registry) WritePrometheusWith(w io.Writer, o PromOptions) error {
	if r == nil {
		return nil
	}
	snap := r.Snapshot()
	for _, name := range sortedNames(snap.Counters) {
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, snap.Counters[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedNames(snap.Gauges) {
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", name, name, snap.Gauges[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedNames(snap.Histograms) {
		h := snap.Histograms[name]
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
			return err
		}
		var exemplars map[int]BucketExemplar
		if o.Exemplars && len(h.Exemplars) > 0 {
			exemplars = make(map[int]BucketExemplar, len(h.Exemplars))
			for _, e := range h.Exemplars {
				exemplars[e.Bucket] = e
			}
		}
		var cum uint64
		for i, n := range h.Buckets {
			cum += n
			if n == 0 && i != histBuckets-1 {
				continue // elide empty buckets; cumulative `le` keeps semantics
			}
			le := fmt.Sprint(BucketUpper(i))
			if i == histBuckets-1 {
				le = "+Inf"
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d", name, le, cum); err != nil {
				return err
			}
			if e, ok := exemplars[i]; ok {
				// Exemplar annotation: the last trace ID observed into
				// this bucket, resolvable against /debug/flight records.
				if _, err := fmt.Fprintf(w, " # {trace_id=\"0x%x\"} %d", e.TraceID, e.Value); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n", name, h.Sum, name, h.Count); err != nil {
			return err
		}
		// Interpolated quantiles as companion gauges: Prometheus cannot
		// aggregate these across instances, but for a single simulated
		// platform they are exactly the medians the paper reports.
		for _, q := range [...]struct {
			suffix string
			q      float64
		}{{"p50", 0.50}, {"p95", 0.95}, {"p99", 0.99}} {
			if _, err := fmt.Fprintf(w, "# TYPE %s_%s gauge\n%s_%s %d\n",
				name, q.suffix, name, q.suffix, h.Quantile(q.q)); err != nil {
				return err
			}
		}
	}
	return nil
}

// cyclesPerMicro converts simulated cycles to trace microseconds at the
// testbed core frequency.
const cyclesPerMicro = float64(sim.FrequencyHz) / 1e6

// chromeEvent is one trace_event record in the Chrome/Perfetto JSON
// format.
type chromeEvent struct {
	Name  string            `json:"name"`
	Cat   string            `json:"cat,omitempty"`
	Phase string            `json:"ph"`
	TS    float64           `json:"ts"`
	Dur   float64           `json:"dur,omitempty"`
	PID   int               `json:"pid"`
	TID   int               `json:"tid"`
	Args  map[string]uint64 `json:"args,omitempty"`
}

// chromeTID groups event kinds onto stable rows: all call spans on one
// row per mechanism, hardware/paging events on their own rows.
func chromeTID(k Kind) int {
	switch k {
	case KindEcall, KindOcall:
		return 1 // SDK interface
	case KindHotECall, KindHotOCall, KindFallback:
		return 2 // HotCalls interface
	case KindEEnter, KindEExit, KindEResume, KindAEX:
		return 3 // leaf instructions
	case KindEPCFault, KindEWB:
		return 4 // paging
	case KindMemAccess:
		return 6 // memory operations (deep tracing)
	case KindMarshal, KindSpin, KindHandler:
		return 7 // call phases (deep tracing)
	default:
		return 5 // MEE
	}
}

var chromeRowNames = map[int]string{
	1: "sdk calls", 2: "hotcalls", 3: "sgx instructions", 4: "epc paging", 5: "mee",
	6: "memory", 7: "call phases",
}

// chromeMetadata is a trace_event metadata record (string-valued args,
// unlike the numeric args of data events).
type chromeMetadata struct {
	Name  string            `json:"name"`
	Phase string            `json:"ph"`
	PID   int               `json:"pid"`
	TID   int               `json:"tid"`
	Args  map[string]string `json:"args"`
}

// ChromeRowMetadata returns the thread_name metadata records naming the
// exporter's stable rows — shared by WriteChromeTrace and merged-trace
// writers (internal/profile) so every export groups kinds identically.
func ChromeRowMetadata() []any {
	out := make([]any, 0, len(chromeRowNames))
	for tid := 1; tid <= len(chromeRowNames); tid++ {
		out = append(out, chromeMetadata{
			Name: "thread_name", Phase: "M", PID: 0, TID: tid,
			Args: map[string]string{"name": chromeRowNames[tid]},
		})
	}
	return out
}

// ChromeTraceEvents converts tracer events to Chrome trace_event records
// (cycles rescaled to microseconds at the testbed frequency): spans
// (Dur > 0) become complete ("X") events, instantaneous events become
// instant ("i") events.
func ChromeTraceEvents(events []Event) []any {
	out := make([]any, 0, len(events))
	for _, e := range events {
		ce := chromeEvent{
			Name:  e.Name,
			Cat:   e.Kind.String(),
			Phase: "X",
			TS:    float64(e.TS) / cyclesPerMicro,
			PID:   0,
			TID:   chromeTID(e.Kind),
		}
		if e.Dur > 0 {
			ce.Dur = float64(e.Dur) / cyclesPerMicro
		} else {
			ce.Phase = "i"
		}
		if e.Arg != 0 {
			ce.Args = map[string]uint64{"arg": e.Arg, "cycles": e.Dur}
		} else if e.Dur > 0 {
			ce.Args = map[string]uint64{"cycles": e.Dur}
		}
		out = append(out, ce)
	}
	return out
}

// WriteChromeJSON wraps prepared trace_event records in the standard
// envelope ({"traceEvents": [...]}) Chrome and Perfetto load.
func WriteChromeJSON(w io.Writer, events []any) error {
	out := struct {
		TraceEvents     []any  `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}{TraceEvents: events, DisplayTimeUnit: "ns"}
	if out.TraceEvents == nil {
		out.TraceEvents = []any{}
	}
	return json.NewEncoder(w).Encode(out)
}

// WriteChromeTrace renders the tracer's retained events as Chrome
// trace_event JSON, loadable in chrome://tracing or ui.perfetto.dev.
// Spans (Dur > 0) become complete ("X") events; instantaneous events
// become instant ("i") events.  Safe on a nil registry or disabled
// tracer (writes an empty trace).
func (r *Registry) WriteChromeTrace(w io.Writer) error {
	events := r.Tracer().Events()
	all := append(ChromeRowMetadata(), ChromeTraceEvents(events)...)
	return WriteChromeJSON(w, all)
}

// Handler returns an http.Handler that serves the registry's Prometheus
// dump — the /metrics endpoint for the simulated servers.  Safe on nil
// (serves an empty body).
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheusWith(w, PromOptions{
			Exemplars: req.URL.Query().Get("exemplars") == "1",
		})
	})
}

// Package cache models a set-associative write-back cache with true-LRU
// replacement.  The benchmark harness instantiates it twice: once as the
// 8 MB last-level cache of the paper's Core i7-6700K testbed, and once (with
// a much smaller geometry) as the Memory Encryption Engine's internal cache
// of integrity-tree nodes.
//
// The model tracks which line addresses are resident and dirty; it does not
// store data.  Cycle costs are charged by the layers above (internal/mem),
// which combine hit/miss outcomes with the calibrated latency model.
package cache

import "math/bits"

// Config describes a cache geometry.  All fields must be powers of two.
type Config struct {
	SizeBytes int // total capacity
	LineSize  int // bytes per line
	Ways      int // associativity
}

// LLCConfig is the geometry of the testbed's last-level cache: 8 MB,
// 64-byte lines, 16-way (Core i7-6700K).
var LLCConfig = Config{SizeBytes: 8 << 20, LineSize: 64, Ways: 16}

// Victim describes a line displaced by an insertion.
type Victim struct {
	Addr  uint64 // line-aligned byte address of the displaced line
	Dirty bool   // displaced line held modified data (write-back needed)
	Valid bool   // false when the insertion filled an empty way
}

type entry struct {
	line  uint64 // line number (addr >> lineShift)
	dirty bool
	valid bool
}

// Cache is a set-associative write-back cache.  It is not safe for
// concurrent use.
type Cache struct {
	cfg       Config
	lineShift uint
	setMask   uint64
	sets      [][]entry // sets[i] is LRU-ordered, front = most recent
	accesses  uint64
	misses    uint64
}

// New returns a cache with the given geometry.  It panics if the geometry
// is not a power-of-two design or the associativity exceeds the line count.
func New(cfg Config) *Cache {
	if cfg.SizeBytes <= 0 || cfg.LineSize <= 0 || cfg.Ways <= 0 {
		panic("cache: non-positive geometry")
	}
	lines := cfg.SizeBytes / cfg.LineSize
	numSets := lines / cfg.Ways
	if numSets == 0 {
		panic("cache: associativity exceeds line count")
	}
	if numSets*cfg.Ways*cfg.LineSize != cfg.SizeBytes {
		panic("cache: size not divisible into sets x ways x lines")
	}
	if cfg.LineSize&(cfg.LineSize-1) != 0 || numSets&(numSets-1) != 0 {
		panic("cache: line size and set count must be powers of two")
	}
	c := &Cache{
		cfg:     cfg,
		setMask: uint64(numSets - 1),
		sets:    make([][]entry, numSets),
	}
	c.lineShift = uint(bits.TrailingZeros(uint(cfg.LineSize)))
	for i := range c.sets {
		c.sets[i] = make([]entry, 0, cfg.Ways)
	}
	return c
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// LineAddr returns the line-aligned address containing addr.
func (c *Cache) LineAddr(addr uint64) uint64 {
	return (addr >> c.lineShift) << c.lineShift
}

func (c *Cache) lineOf(addr uint64) uint64 { return addr >> c.lineShift }

func (c *Cache) setOf(line uint64) int { return int(line & c.setMask) }

// Probe reports whether addr's line is resident, without touching
// replacement state.
func (c *Cache) Probe(addr uint64) bool {
	line := c.lineOf(addr)
	for _, e := range c.sets[c.setOf(line)] {
		if e.valid && e.line == line {
			return true
		}
	}
	return false
}

// Access performs a load (write=false) or store (write=true) to addr.
// It returns whether the access hit, and the victim displaced if the
// resulting fill evicted a valid line.
func (c *Cache) Access(addr uint64, write bool) (hit bool, victim Victim) {
	c.accesses++
	line := c.lineOf(addr)
	set := c.setOf(line)
	ways := c.sets[set]
	for i, e := range ways {
		if e.valid && e.line == line {
			// Hit: move to MRU position.
			if write {
				e.dirty = true
			}
			copy(ways[1:i+1], ways[:i])
			ways[0] = e
			return true, Victim{}
		}
	}
	c.misses++
	// Miss: fill, evicting LRU if the set is full.
	e := entry{line: line, dirty: write, valid: true}
	if len(ways) < c.cfg.Ways {
		ways = append(ways, entry{})
		copy(ways[1:], ways[:len(ways)-1])
		ways[0] = e
		c.sets[set] = ways
		return false, Victim{}
	}
	lru := ways[len(ways)-1]
	copy(ways[1:], ways[:len(ways)-1])
	ways[0] = e
	return false, Victim{
		Addr:  lru.line << c.lineShift,
		Dirty: lru.dirty,
		Valid: true,
	}
}

// Flush removes addr's line (the clflush instruction).  It reports whether
// the line was present and whether it was dirty (requiring write-back).
func (c *Cache) Flush(addr uint64) (present, dirty bool) {
	line := c.lineOf(addr)
	set := c.setOf(line)
	ways := c.sets[set]
	for i, e := range ways {
		if e.valid && e.line == line {
			c.sets[set] = append(ways[:i], ways[i+1:]...)
			return true, e.dirty
		}
	}
	return false, false
}

// FlushRange flushes every line overlapping [addr, addr+size) and returns
// the number of dirty lines written back.
func (c *Cache) FlushRange(addr, size uint64) (dirtyLines int) {
	if size == 0 {
		return 0
	}
	first := c.lineOf(addr)
	last := c.lineOf(addr + size - 1)
	for line := first; line <= last; line++ {
		if _, d := c.Flush(line << c.lineShift); d {
			dirtyLines++
		}
	}
	return dirtyLines
}

// FlushAll empties the cache (the cold-cache experiments of Figure 2 flush
// the entire 8 MB LLC before every run).  It returns the number of dirty
// lines that needed write-back.
func (c *Cache) FlushAll() (dirtyLines int) {
	for i, ways := range c.sets {
		for _, e := range ways {
			if e.valid && e.dirty {
				dirtyLines++
			}
		}
		c.sets[i] = c.sets[i][:0]
	}
	return dirtyLines
}

// Occupancy returns the number of resident lines.
func (c *Cache) Occupancy() int {
	n := 0
	for _, ways := range c.sets {
		n += len(ways)
	}
	return n
}

// Stats returns cumulative access and miss counts.
func (c *Cache) Stats() (accesses, misses uint64) { return c.accesses, c.misses }

package cache

import (
	"testing"
	"testing/quick"

	"hotcalls/internal/sim"
)

func tiny() *Cache {
	// 4 sets x 2 ways x 64-byte lines = 512 bytes.
	return New(Config{SizeBytes: 512, LineSize: 64, Ways: 2})
}

func TestMissThenHit(t *testing.T) {
	c := tiny()
	if hit, _ := c.Access(0x1000, false); hit {
		t.Fatal("first access should miss")
	}
	if hit, _ := c.Access(0x1000, false); !hit {
		t.Fatal("second access should hit")
	}
	if hit, _ := c.Access(0x1038, false); !hit {
		t.Fatal("same-line access should hit")
	}
	if hit, _ := c.Access(0x1040, false); hit {
		t.Fatal("next line should miss")
	}
}

func TestLRUEviction(t *testing.T) {
	c := tiny()
	// Three lines mapping to the same set (set stride = 4 sets * 64 B).
	a, b, d := uint64(0), uint64(256), uint64(512)
	c.Access(a, false)
	c.Access(b, false)
	// Touch a so b becomes LRU.
	c.Access(a, false)
	_, victim := c.Access(d, false)
	if !victim.Valid || victim.Addr != b {
		t.Fatalf("victim = %+v, want line %#x", victim, b)
	}
	if !c.Probe(a) || c.Probe(b) || !c.Probe(d) {
		t.Fatal("residency after eviction is wrong")
	}
}

func TestDirtyVictim(t *testing.T) {
	c := tiny()
	c.Access(0, true) // dirty
	c.Access(256, false)
	_, victim := c.Access(512, false)
	if !victim.Valid || !victim.Dirty || victim.Addr != 0 {
		t.Fatalf("victim = %+v, want dirty line 0", victim)
	}
}

func TestWriteMarksDirtyOnHit(t *testing.T) {
	c := tiny()
	c.Access(0, false)
	c.Access(0, true) // hit, marks dirty
	if _, dirty := c.Flush(0); !dirty {
		t.Fatal("line should be dirty after store hit")
	}
}

func TestFlush(t *testing.T) {
	c := tiny()
	c.Access(0x80, true)
	present, dirty := c.Flush(0x80)
	if !present || !dirty {
		t.Fatalf("Flush = (%v, %v), want (true, true)", present, dirty)
	}
	if c.Probe(0x80) {
		t.Fatal("line still resident after flush")
	}
	if present, _ := c.Flush(0x80); present {
		t.Fatal("double flush should report absent")
	}
}

func TestFlushRange(t *testing.T) {
	c := tiny()
	for i := uint64(0); i < 4; i++ {
		c.Access(i*64, true)
	}
	if n := c.FlushRange(0, 256); n != 4 {
		t.Fatalf("FlushRange wrote back %d dirty lines, want 4", n)
	}
	if c.Occupancy() != 0 {
		t.Fatalf("occupancy = %d after full flush", c.Occupancy())
	}
	if n := c.FlushRange(0, 0); n != 0 {
		t.Fatal("empty range should flush nothing")
	}
}

func TestFlushRangePartialLine(t *testing.T) {
	c := tiny()
	c.Access(64, false)
	// Range [100, 101) overlaps line 1 only.
	c.FlushRange(100, 1)
	if c.Probe(64) {
		t.Fatal("line overlapping range not flushed")
	}
}

func TestFlushAll(t *testing.T) {
	c := tiny()
	c.Access(0, true)
	c.Access(64, false)
	c.Access(128, true)
	if n := c.FlushAll(); n != 2 {
		t.Fatalf("FlushAll dirty count = %d, want 2", n)
	}
	if c.Occupancy() != 0 {
		t.Fatal("cache not empty after FlushAll")
	}
}

func TestStats(t *testing.T) {
	c := tiny()
	c.Access(0, false)
	c.Access(0, false)
	c.Access(64, false)
	acc, miss := c.Stats()
	if acc != 3 || miss != 2 {
		t.Fatalf("stats = (%d, %d), want (3, 2)", acc, miss)
	}
}

func TestLLCGeometry(t *testing.T) {
	c := New(LLCConfig)
	if got := len(c.sets); got != 8192 {
		t.Fatalf("LLC sets = %d, want 8192", got)
	}
	if c.LineAddr(0x12345) != 0x12340 {
		t.Fatalf("LineAddr = %#x", c.LineAddr(0x12345))
	}
}

func TestBadGeometryPanics(t *testing.T) {
	for _, cfg := range []Config{
		{SizeBytes: 0, LineSize: 64, Ways: 2},
		{SizeBytes: 512, LineSize: 0, Ways: 2},
		{SizeBytes: 512, LineSize: 64, Ways: 0},
		{SizeBytes: 500, LineSize: 64, Ways: 2},  // not power of two
		{SizeBytes: 128, LineSize: 64, Ways: 16}, // ways > lines
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v should panic", cfg)
				}
			}()
			New(cfg)
		}()
	}
}

func TestOccupancyNeverExceedsCapacity(t *testing.T) {
	f := func(seed uint64) bool {
		r := sim.NewRNG(seed)
		c := tiny()
		for i := 0; i < 500; i++ {
			c.Access(uint64(r.Intn(1<<14)), r.Bool(0.5))
		}
		return c.Occupancy() <= 8 // 4 sets x 2 ways
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMostRecentLineAlwaysResident(t *testing.T) {
	f := func(seed uint64) bool {
		r := sim.NewRNG(seed)
		c := tiny()
		for i := 0; i < 500; i++ {
			addr := uint64(r.Intn(1 << 14))
			c.Access(addr, false)
			if !c.Probe(addr) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestVictimNeverEqualsInserted(t *testing.T) {
	f := func(seed uint64) bool {
		r := sim.NewRNG(seed)
		c := tiny()
		for i := 0; i < 500; i++ {
			addr := uint64(r.Intn(1 << 14))
			_, v := c.Access(addr, false)
			if v.Valid && v.Addr == c.LineAddr(addr) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() []bool {
		r := sim.NewRNG(99)
		c := New(Config{SizeBytes: 4096, LineSize: 64, Ways: 4})
		hits := make([]bool, 0, 1000)
		for i := 0; i < 1000; i++ {
			h, _ := c.Access(uint64(r.Intn(1<<13)), r.Bool(0.3))
			hits = append(hits, h)
		}
		return hits
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at access %d", i)
		}
	}
}

func TestProbeDoesNotPerturbLRU(t *testing.T) {
	c := tiny()
	a, b, d := uint64(0), uint64(256), uint64(512)
	c.Access(a, false)
	c.Access(b, false) // LRU order: b (MRU), a (LRU)
	// Probing a must NOT refresh it.
	if !c.Probe(a) {
		t.Fatal("probe miss")
	}
	_, victim := c.Access(d, false)
	if victim.Addr != a {
		t.Fatalf("victim = %#x, want %#x: Probe refreshed LRU state", victim.Addr, a)
	}
}

func TestNonPowerOfTwoWays(t *testing.T) {
	// 16 sets x 3 ways, the MEE node-cache geometry.
	c := New(Config{SizeBytes: 48 * 64, LineSize: 64, Ways: 3})
	set0 := func(i uint64) uint64 { return i * 16 * 64 } // same set, different tags
	c.Access(set0(0), false)
	c.Access(set0(1), false)
	c.Access(set0(2), false)
	_, victim := c.Access(set0(3), false)
	if !victim.Valid || victim.Addr != set0(0) {
		t.Fatalf("3-way set should evict LRU: victim = %+v", victim)
	}
}

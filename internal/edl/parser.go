package edl

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Parse parses EDL source text into a validated File.
func Parse(src string) (*File, error) {
	p := &parser{toks: tokenize(src)}
	f, err := p.file()
	if err != nil {
		return nil, err
	}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	return f, nil
}

// MustParse is Parse that panics on error, for declarations embedded in
// source code.
func MustParse(src string) *File {
	f, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return f
}

type token struct {
	text string
	pos  int // byte offset for diagnostics
}

func tokenize(src string) []token {
	var toks []token
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == '/' && i+1 < len(src) && src[i+1] == '/':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < len(src) && src[i+1] == '*':
			end := strings.Index(src[i+2:], "*/")
			if end < 0 {
				i = len(src)
			} else {
				i += end + 4
			}
		case unicode.IsSpace(rune(c)):
			i++
		case isWordByte(c):
			start := i
			for i < len(src) && isWordByte(src[i]) {
				i++
			}
			toks = append(toks, token{src[start:i], start})
		default:
			toks = append(toks, token{string(c), i})
			i++
		}
	}
	return toks
}

func isWordByte(c byte) bool {
	return c == '_' || c >= '0' && c <= '9' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) errf(format string, args ...interface{}) error {
	where := "end of input"
	if p.pos < len(p.toks) {
		where = fmt.Sprintf("%q (offset %d)", p.toks[p.pos].text, p.toks[p.pos].pos)
	}
	return fmt.Errorf("edl: %s at %s", fmt.Sprintf(format, args...), where)
}

func (p *parser) peek() string {
	if p.pos < len(p.toks) {
		return p.toks[p.pos].text
	}
	return ""
}

func (p *parser) next() string {
	t := p.peek()
	p.pos++
	return t
}

func (p *parser) accept(text string) bool {
	if p.peek() == text {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(text string) error {
	if !p.accept(text) {
		return p.errf("expected %q", text)
	}
	return nil
}

func (p *parser) file() (*File, error) {
	if err := p.expect("enclave"); err != nil {
		return nil, err
	}
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	f := &File{}
	for !p.accept("}") {
		switch p.peek() {
		case "trusted":
			p.next()
			fns, err := p.block(true)
			if err != nil {
				return nil, err
			}
			f.Trusted = append(f.Trusted, fns...)
		case "untrusted":
			p.next()
			fns, err := p.block(false)
			if err != nil {
				return nil, err
			}
			f.Untrusted = append(f.Untrusted, fns...)
		case "":
			return nil, p.errf("unterminated enclave block")
		default:
			return nil, p.errf("expected trusted or untrusted block")
		}
	}
	p.accept(";")
	if p.pos != len(p.toks) {
		return nil, p.errf("trailing input")
	}
	return f, nil
}

func (p *parser) block(trusted bool) ([]Func, error) {
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	var fns []Func
	for !p.accept("}") {
		if p.peek() == "" {
			return nil, p.errf("unterminated block")
		}
		fn, err := p.decl(trusted)
		if err != nil {
			return nil, err
		}
		fns = append(fns, *fn)
	}
	if err := p.expect(";"); err != nil {
		return nil, err
	}
	return fns, nil
}

func (p *parser) decl(trusted bool) (*Func, error) {
	fn := &Func{}
	if p.accept("public") {
		if !trusted {
			return nil, p.errf("public only applies to trusted functions")
		}
		fn.Public = true
	}
	ret, err := p.typeName()
	if err != nil {
		return nil, err
	}
	fn.Ret = ret
	// Pointer returns are not supported by edger8r either.
	if p.peek() == "*" {
		return nil, p.errf("pointer return types are not supported")
	}
	name := p.next()
	if !isIdent(name) {
		return nil, p.errf("expected function name")
	}
	fn.Name = name
	if err := p.expect("("); err != nil {
		return nil, err
	}
	if !p.accept(")") {
		if p.peek() == "void" && p.pos+1 < len(p.toks) && p.toks[p.pos+1].text == ")" {
			p.next()
			p.next()
		} else {
			for {
				param, err := p.param()
				if err != nil {
					return nil, err
				}
				fn.Params = append(fn.Params, *param)
				if p.accept(")") {
					break
				}
				if err := p.expect(","); err != nil {
					return nil, err
				}
			}
		}
	}
	if p.accept("allow") {
		if trusted {
			return nil, p.errf("allow only applies to untrusted functions")
		}
		if err := p.expect("("); err != nil {
			return nil, err
		}
		for {
			n := p.next()
			if !isIdent(n) {
				return nil, p.errf("expected ecall name in allow list")
			}
			fn.Allowed = append(fn.Allowed, n)
			if p.accept(")") {
				break
			}
			if err := p.expect(","); err != nil {
				return nil, err
			}
		}
	}
	if err := p.expect(";"); err != nil {
		return nil, err
	}
	return fn, nil
}

func (p *parser) param() (*Param, error) {
	param := &Param{Direction: UserCheck}
	hasIn, hasOut, hasZC, hasAttrs := false, false, false, false
	if p.accept("[") {
		hasAttrs = true
		for {
			switch attr := p.next(); attr {
			case "in":
				hasIn = true
			case "out":
				hasOut = true
			case "zerocopy":
				hasZC = true
			case "user_check":
			case "string":
				param.IsString = true
			case "isptr", "readonly":
				// accepted and ignored, as for user-defined types
			case "size", "count":
				if err := p.expect("="); err != nil {
					return nil, err
				}
				v := p.next()
				if n, err := strconv.ParseUint(v, 0, 64); err == nil {
					if attr == "size" {
						param.SizeConst = n
					} else {
						return nil, p.errf("constant count not supported; use size")
					}
				} else if isIdent(v) {
					if attr == "size" {
						param.SizeParam = v
					} else {
						param.CountParm = v
					}
				} else {
					return nil, p.errf("bad %s value %q", attr, v)
				}
			default:
				return nil, p.errf("unknown attribute %q", attr)
			}
			if p.accept("]") {
				break
			}
			if err := p.expect(","); err != nil {
				return nil, err
			}
		}
	}
	switch {
	case hasZC && (hasIn || hasOut):
		return nil, p.errf("zerocopy cannot combine with in/out")
	case hasZC:
		param.Direction = ZeroCopy
	case hasIn && hasOut:
		param.Direction = InOut
	case hasIn:
		param.Direction = In
	case hasOut:
		param.Direction = Out
	}
	typ, err := p.typeName()
	if err != nil {
		return nil, err
	}
	param.Type = typ
	for p.accept("*") {
		param.Pointer = true
	}
	name := p.next()
	if !isIdent(name) {
		return nil, p.errf("expected parameter name")
	}
	param.Name = name
	if hasAttrs && !param.Pointer {
		return nil, p.errf("attributes on non-pointer parameter %q", name)
	}
	return param, nil
}

// typeName consumes a C type spelling: optional const, then one or more
// identifier words ("unsigned int", "struct sockaddr").  Consumption stops
// after the first word that is not a qualifier, leaving the declarator
// name for the caller.
func (p *parser) typeName() (string, error) {
	var words []string
	p.accept("const")
	for {
		w := p.peek()
		if !isIdent(w) || w == "public" || w == "allow" {
			break
		}
		if len(words) > 0 && !mayFollow(words[len(words)-1], w) {
			break
		}
		words = append(words, p.next())
	}
	if len(words) == 0 {
		return "", p.errf("expected type name")
	}
	return strings.Join(words, " "), nil
}

// mayFollow reports whether word w continues a type spelling whose previous
// word was prev ("unsigned int", "struct timeval", "long long", ...).
func mayFollow(prev, w string) bool {
	switch prev {
	case "unsigned", "signed", "struct":
		return true
	case "long":
		return w == "long" || w == "int" || w == "double"
	}
	return false
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	if s[0] >= '0' && s[0] <= '9' {
		return false
	}
	for i := 0; i < len(s); i++ {
		if !isWordByte(s[i]) {
			return false
		}
	}
	return true
}

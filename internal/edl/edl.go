// Package edl parses the Enclave Definition Language, the Intel-provided
// syntax in which SGX developers declare their edge functions (ecalls and
// ocalls), the parameters they take, and each pointer's marshalling
// attributes ([in], [out], [in, out], [user_check], [size=n], [count=n],
// [string]).  The edger8r tool — reimplemented by cmd/edger8r and the sdk
// package — consumes these declarations to generate the trusted and
// untrusted glue code whose cost the paper measures in Section 3.2.1.
package edl

import "fmt"

// Direction is a pointer parameter's marshalling attribute.
type Direction int

// Pointer directions, Section 3.2.1 of the paper.  For ecalls, In copies
// the buffer into the enclave and Out copies it back out (after zeroing the
// enclave staging buffer).  For ocalls the perspective flips: In copies
// from the enclave out to the untrusted stack, Out zeroes an untrusted
// staging buffer and copies it into the enclave on return.
const (
	UserCheck Direction = iota // zero copy, no checks
	In
	Out
	InOut
	// ZeroCopy marks a buffer that lives in a pre-registered shared
	// payload ring (sdk.Runtime.RegisterSharedRing): the edge glue skips
	// both the staging allocation and the per-byte copies and only
	// verifies the pointer lies inside a registered ring region.  Unlike
	// [user_check] the runtime still range-checks the buffer, so a
	// ZeroCopy parameter that does not point into a ring is rejected
	// rather than silently passed through.
	ZeroCopy
)

func (d Direction) String() string {
	switch d {
	case UserCheck:
		return "user_check"
	case In:
		return "in"
	case Out:
		return "out"
	case InOut:
		return "in, out"
	case ZeroCopy:
		return "zerocopy"
	}
	return fmt.Sprintf("Direction(%d)", int(d))
}

// Param is one declared parameter of an edge function.
type Param struct {
	Name      string
	Type      string // C type spelling, e.g. "uint8_t" or "size_t"
	Pointer   bool
	Direction Direction // meaningful only for pointers
	SizeParam string    // [size=param]: byte length given by another param
	SizeConst uint64    // [size=N]: fixed byte length
	CountParm string    // [count=param]: element count
	IsString  bool      // [string]: NUL-terminated, length discovered
}

// Func is one declared edge function.
type Func struct {
	Name    string
	Ret     string // return C type or "void"
	Public  bool   // trusted functions may be declared public
	Params  []Param
	Allowed []string // ocall: ecalls this function may re-enter with
}

// File is a parsed EDL file: the trusted block declares ecalls, the
// untrusted block declares ocalls.
type File struct {
	Trusted   []Func
	Untrusted []Func
}

// TrustedFunc returns the declared ecall with the given name, or nil.
func (f *File) TrustedFunc(name string) *Func {
	for i := range f.Trusted {
		if f.Trusted[i].Name == name {
			return &f.Trusted[i]
		}
	}
	return nil
}

// UntrustedFunc returns the declared ocall with the given name, or nil.
func (f *File) UntrustedFunc(name string) *Func {
	for i := range f.Untrusted {
		if f.Untrusted[i].Name == name {
			return &f.Untrusted[i]
		}
	}
	return nil
}

// Validate checks cross-references: every [size=x]/[count=x] attribute must
// name a scalar parameter of the same function, directions may only
// decorate pointers, and names must be unique per block.
func (f *File) Validate() error {
	for _, block := range [][]Func{f.Trusted, f.Untrusted} {
		seen := make(map[string]bool)
		for _, fn := range block {
			if seen[fn.Name] {
				return fmt.Errorf("edl: duplicate function %q", fn.Name)
			}
			seen[fn.Name] = true
			if err := validateFunc(&fn); err != nil {
				return err
			}
		}
	}
	for _, fn := range f.Untrusted {
		for _, allowed := range fn.Allowed {
			if f.TrustedFunc(allowed) == nil {
				return fmt.Errorf("edl: %s allows unknown ecall %q", fn.Name, allowed)
			}
		}
	}
	return nil
}

func validateFunc(fn *Func) error {
	params := make(map[string]*Param)
	for i := range fn.Params {
		p := &fn.Params[i]
		if params[p.Name] != nil {
			return fmt.Errorf("edl: %s: duplicate parameter %q", fn.Name, p.Name)
		}
		params[p.Name] = p
	}
	for i := range fn.Params {
		p := &fn.Params[i]
		if !p.Pointer {
			if p.Direction != UserCheck || p.SizeParam != "" || p.IsString {
				return fmt.Errorf("edl: %s: attribute on non-pointer %q", fn.Name, p.Name)
			}
			continue
		}
		if p.IsString && (p.Direction == UserCheck || p.Direction == ZeroCopy) {
			return fmt.Errorf("edl: %s: [string] requires a copy direction on %q", fn.Name, p.Name)
		}
		for _, ref := range []string{p.SizeParam, p.CountParm} {
			if ref == "" {
				continue
			}
			r, ok := params[ref]
			if !ok {
				return fmt.Errorf("edl: %s: %q references unknown parameter %q", fn.Name, p.Name, ref)
			}
			if r.Pointer {
				return fmt.Errorf("edl: %s: size/count parameter %q must be a scalar", fn.Name, ref)
			}
		}
	}
	return nil
}

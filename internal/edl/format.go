package edl

import (
	"fmt"
	"strings"
)

// Format renders a File back into canonical EDL source.  Parsing the
// output yields a File equal to the input (the round-trip property the
// tests enforce), which makes the package usable as an EDL formatter and
// lets tools emit declarations programmatically.
func Format(f *File) string {
	var b strings.Builder
	b.WriteString("enclave {\n")
	if len(f.Trusted) > 0 {
		b.WriteString("    trusted {\n")
		for i := range f.Trusted {
			formatFunc(&b, &f.Trusted[i], true)
		}
		b.WriteString("    };\n")
	}
	if len(f.Untrusted) > 0 {
		b.WriteString("    untrusted {\n")
		for i := range f.Untrusted {
			formatFunc(&b, &f.Untrusted[i], false)
		}
		b.WriteString("    };\n")
	}
	b.WriteString("};\n")
	return b.String()
}

func formatFunc(b *strings.Builder, fn *Func, trusted bool) {
	b.WriteString("        ")
	if fn.Public {
		b.WriteString("public ")
	}
	b.WriteString(fn.Ret)
	b.WriteByte(' ')
	b.WriteString(fn.Name)
	b.WriteByte('(')
	if len(fn.Params) == 0 {
		b.WriteString("void")
	}
	for i := range fn.Params {
		if i > 0 {
			b.WriteString(", ")
		}
		formatParam(b, &fn.Params[i])
	}
	b.WriteByte(')')
	if len(fn.Allowed) > 0 {
		b.WriteString(" allow(")
		b.WriteString(strings.Join(fn.Allowed, ", "))
		b.WriteByte(')')
	}
	b.WriteString(";\n")
}

func formatParam(b *strings.Builder, p *Param) {
	var attrs []string
	if p.Pointer {
		switch p.Direction {
		case In:
			attrs = append(attrs, "in")
		case Out:
			attrs = append(attrs, "out")
		case InOut:
			attrs = append(attrs, "in", "out")
		case ZeroCopy:
			attrs = append(attrs, "zerocopy")
		case UserCheck:
			attrs = append(attrs, "user_check")
		}
		if p.IsString {
			attrs = append(attrs, "string")
		}
		switch {
		case p.SizeParam != "":
			attrs = append(attrs, "size="+p.SizeParam)
		case p.SizeConst != 0:
			attrs = append(attrs, fmt.Sprintf("size=%d", p.SizeConst))
		}
		if p.CountParm != "" {
			attrs = append(attrs, "count="+p.CountParm)
		}
	}
	if len(attrs) > 0 {
		fmt.Fprintf(b, "[%s] ", strings.Join(attrs, ", "))
	}
	b.WriteString(p.Type)
	if p.Pointer {
		b.WriteByte('*')
	}
	b.WriteByte(' ')
	b.WriteString(p.Name)
}

package edl

import (
	"reflect"
	"strings"
	"testing"
)

var formatCases = []string{
	sampleEDL,
	`enclave { trusted { public void f(void); }; };`,
	`enclave { untrusted { long g([in, out, size=n] uint8_t* b, size_t n) allow(); }; };`,
	`enclave {
		trusted {
			public int ecall_main(void);
			int ecall_private([user_check] void* p);
		};
		untrusted {
			void o([in, string] char* s, [out, size=144] uint8_t* statbuf, [in, count=n] uint32_t* v, size_t n);
		};
	};`,
}

func TestFormatRoundTrip(t *testing.T) {
	for i, src := range formatCases {
		f1, err := Parse(src)
		if err != nil {
			// allow() with no names is invalid; skip unparseable seeds
			continue
		}
		formatted := Format(f1)
		f2, err := Parse(formatted)
		if err != nil {
			t.Errorf("case %d: formatted output does not parse: %v\n%s", i, err, formatted)
			continue
		}
		if !reflect.DeepEqual(f1, f2) {
			t.Errorf("case %d: round trip diverged\nfirst:  %+v\nsecond: %+v\nsource:\n%s", i, f1, f2, formatted)
		}
	}
}

func TestFormatIsIdempotent(t *testing.T) {
	f, err := Parse(sampleEDL)
	if err != nil {
		t.Fatal(err)
	}
	once := Format(f)
	f2, err := Parse(once)
	if err != nil {
		t.Fatal(err)
	}
	if twice := Format(f2); once != twice {
		t.Fatalf("formatting is not idempotent:\n%s\nvs\n%s", once, twice)
	}
}

func TestFormatEmptyBlocksOmitted(t *testing.T) {
	f := &File{Trusted: []Func{{Name: "f", Ret: "void", Public: true}}}
	out := Format(f)
	if strings.Contains(out, "untrusted") {
		t.Errorf("empty untrusted block emitted:\n%s", out)
	}
}

package edl

import (
	goparser "go/parser"
	gotoken "go/token"
	"strings"
	"testing"
)

const genEDL = `
enclave {
    trusted {
        public int ecall_main(void);
        public int ecall_process([in, size=len] uint8_t* req, size_t len);
        int ecall_private(void);
    };
    untrusted {
        long ocall_read(int fd, [out, size=cap] uint8_t* buf, size_t cap);
        long ocall_time(void);
    };
};
`

func mustParseGo(t *testing.T, src string) {
	t.Helper()
	fset := gotoken.NewFileSet()
	if _, err := goparser.ParseFile(fset, "gen.go", src, 0); err != nil {
		t.Fatalf("generated code does not parse: %v\n%s", err, src)
	}
}

func TestGenerateTrusted(t *testing.T) {
	f := MustParse(genEDL)
	src := GenerateTrusted(f, "myapp")
	mustParseGo(t, src)
	for _, want := range []string{
		"package myapp",
		"func OcallRead(ctx *sdk.Ctx, fd uint64, buf *sdk.Buffer, cap uint64) (uint64, error)",
		`ctx.OCall("ocall_read", sdk.Scalar(fd), sdk.Buf(buf), sdk.Scalar(cap))`,
		"func OcallTime(ctx *sdk.Ctx) (uint64, error)",
		"DO NOT EDIT",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("trusted output missing %q", want)
		}
	}
	if strings.Contains(src, "Ecall") {
		t.Error("trusted proxy file must not contain ecall wrappers")
	}
}

func TestGenerateUntrusted(t *testing.T) {
	f := MustParse(genEDL)
	src := GenerateUntrusted(f, "myapp")
	mustParseGo(t, src)
	for _, want := range []string{
		"func EcallMain(rt *sdk.Runtime, clk *sim.Clock) (uint64, error)",
		"func EcallProcess(rt *sdk.Runtime, clk *sim.Clock, req *sdk.Buffer, len uint64) (uint64, error)",
		`rt.ECall(clk, "ecall_process", sdk.Buf(req), sdk.Scalar(len))`,
	} {
		if !strings.Contains(src, want) {
			t.Errorf("untrusted output missing %q", want)
		}
	}
	if strings.Contains(src, "EcallPrivate") {
		t.Error("private ecalls must not get public proxies")
	}
}

func TestGoNameMapping(t *testing.T) {
	for in, want := range map[string]string{
		"ocall_read":                 "OcallRead",
		"ecall_run_enclave_function": "EcallRunEnclaveFunction",
		"f":                          "F",
	} {
		if got := goName(in); got != want {
			t.Errorf("goName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestGenerateHotCalls(t *testing.T) {
	f := MustParse(genEDL)
	src := GenerateHotCalls(f, "myapp")
	mustParseGo(t, src)
	for _, want := range []string{
		"func HotOcallRead(ch *core.Channel, clk *sim.Clock, fd uint64, buf *sdk.Buffer, cap uint64) (uint64, error)",
		`ch.HotOCall(clk, "ocall_read", sdk.Scalar(fd), sdk.Buf(buf), sdk.Scalar(cap))`,
		"func HotEcallMain(ch *core.Channel, clk *sim.Clock) (uint64, error)",
		`ch.HotECall(clk, "ecall_main")`,
	} {
		if !strings.Contains(src, want) {
			t.Errorf("hotcalls output missing %q", want)
		}
	}
	if strings.Contains(src, "HotEcallPrivate") {
		t.Error("private ecalls must not get hot proxies")
	}
}

package edl

import (
	"strings"
	"testing"
)

const sampleEDL = `
// Edge functions for the memcached port (Section 6.2).
enclave {
    trusted {
        /* the main-wrapper entry */
        public int ecall_main(void);
        public void ecall_run_enclave_function([user_check] void* fn, [user_check] void* arg);
        public int ecall_process([in, size=len] const uint8_t* req, size_t len,
                                 [out, size=cap] uint8_t* resp, size_t cap);
    };
    untrusted {
        size_t ocall_read([out, size=cap] uint8_t* buf, size_t cap, int fd);
        size_t ocall_sendmsg([in, size=len] const uint8_t* buf, size_t len, int fd) allow(ecall_run_enclave_function);
        void ocall_log([in, string] char* msg);
        long ocall_time(void);
        int ocall_fcntl(int fd, int cmd, [in, out, size=8] uint8_t* arg);
    };
};
`

func TestParseSample(t *testing.T) {
	f, err := Parse(sampleEDL)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(f.Trusted) != 3 || len(f.Untrusted) != 5 {
		t.Fatalf("parsed %d trusted, %d untrusted", len(f.Trusted), len(f.Untrusted))
	}
	main := f.TrustedFunc("ecall_main")
	if main == nil || !main.Public || main.Ret != "int" || len(main.Params) != 0 {
		t.Fatalf("ecall_main = %+v", main)
	}
	proc := f.TrustedFunc("ecall_process")
	if proc == nil {
		t.Fatal("ecall_process missing")
	}
	if got := proc.Params[0]; got.Name != "req" || got.Direction != In || got.SizeParam != "len" || !got.Pointer || got.Type != "uint8_t" {
		t.Fatalf("req param = %+v", got)
	}
	if got := proc.Params[2]; got.Direction != Out || got.SizeParam != "cap" {
		t.Fatalf("resp param = %+v", got)
	}
	if got := proc.Params[1]; got.Pointer || got.Type != "size_t" {
		t.Fatalf("len param = %+v", got)
	}
}

func TestParseDirections(t *testing.T) {
	f, err := Parse(`enclave { untrusted {
		void f([in, out, size=n] uint8_t* b, size_t n,
		       [user_check] void* raw,
		       [out, size=4] uint8_t* fixed);
	};};`)
	if err != nil {
		t.Fatal(err)
	}
	fn := f.UntrustedFunc("f")
	if fn.Params[0].Direction != InOut {
		t.Fatalf("b direction = %v", fn.Params[0].Direction)
	}
	if fn.Params[2].Direction != UserCheck {
		t.Fatalf("raw direction = %v", fn.Params[2].Direction)
	}
	if fn.Params[3].SizeConst != 4 {
		t.Fatalf("fixed size = %d", fn.Params[3].SizeConst)
	}
}

func TestParseAllowList(t *testing.T) {
	f, err := Parse(`enclave {
		trusted { public void cb(void); public void cb2(void); };
		untrusted { void o(void) allow(cb, cb2); };
	};`)
	if err != nil {
		t.Fatal(err)
	}
	o := f.UntrustedFunc("o")
	if len(o.Allowed) != 2 || o.Allowed[0] != "cb" || o.Allowed[1] != "cb2" {
		t.Fatalf("allowed = %v", o.Allowed)
	}
}

func TestParseMultiWordTypes(t *testing.T) {
	f, err := Parse(`enclave { trusted {
		public unsigned int f(unsigned long x, struct timeval* tv);
	};};`)
	if err != nil {
		t.Fatal(err)
	}
	fn := f.Trusted[0]
	if fn.Ret != "unsigned int" {
		t.Fatalf("ret = %q", fn.Ret)
	}
	if fn.Params[0].Type != "unsigned long" || fn.Params[0].Name != "x" {
		t.Fatalf("param 0 = %+v", fn.Params[0])
	}
	if fn.Params[1].Type != "struct timeval" || !fn.Params[1].Pointer {
		t.Fatalf("param 1 = %+v", fn.Params[1])
	}
}

func TestParseStringAttr(t *testing.T) {
	f, err := Parse(`enclave { untrusted { void log([in, string] char* s); };};`)
	if err != nil {
		t.Fatal(err)
	}
	p := f.Untrusted[0].Params[0]
	if !p.IsString || p.Direction != In {
		t.Fatalf("param = %+v", p)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"missing enclave":     `trusted { };`,
		"unterminated":        `enclave { trusted {`,
		"unknown attr":        `enclave { trusted { public void f([inn] int* p); };};`,
		"public ocall":        `enclave { untrusted { public void f(void); };};`,
		"allow on ecall":      `enclave { trusted { public void f(void) allow(g); };};`,
		"attr on scalar":      `enclave { trusted { public void f([in] int x); };};`,
		"size names pointer":  `enclave { trusted { public void f([in, size=q] int* p, [user_check] int* q); };};`,
		"size names missing":  `enclave { trusted { public void f([in, size=n] int* p); };};`,
		"duplicate function":  `enclave { trusted { public void f(void); public void f(void); };};`,
		"duplicate param":     `enclave { trusted { public void f(int a, int a); };};`,
		"allow unknown ecall": `enclave { untrusted { void o(void) allow(nope); };};`,
		"user_check string":   `enclave { untrusted { void o([user_check, string] char* s); };};`,
		"pointer return":      `enclave { trusted { public int* f(void); };};`,
		"missing semicolon":   `enclave { trusted { public void f(void) };};`,
		"trailing garbage":    `enclave { trusted { }; }; extra`,
		"const count":         `enclave { trusted { public void f([in, count=4] int* p); };};`,
	}
	for name, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("%s: parse accepted %q", name, src)
		}
	}
}

func TestCommentsIgnored(t *testing.T) {
	src := `enclave { // line comment
	/* block
	   comment */ trusted { public void f(void); };
	};`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Trusted) != 1 {
		t.Fatal("comment handling broke parsing")
	}
}

func TestMustParsePanicsOnError(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustParse("nonsense")
}

func TestDirectionString(t *testing.T) {
	for d, want := range map[Direction]string{
		UserCheck: "user_check",
		In:        "in",
		Out:       "out",
		InOut:     "in, out",
	} {
		if got := d.String(); got != want {
			t.Errorf("Direction(%d).String() = %q, want %q", int(d), got, want)
		}
	}
	if !strings.HasPrefix(Direction(9).String(), "Direction(") {
		t.Error("unknown direction should format numerically")
	}
}

func TestLookupMissing(t *testing.T) {
	f := MustParse(`enclave { trusted { public void f(void); }; };`)
	if f.TrustedFunc("g") != nil || f.UntrustedFunc("f") != nil {
		t.Fatal("lookups should miss")
	}
}

package spec

import "testing"

func kernel(t *testing.T, name string) Kernel {
	t.Helper()
	for _, k := range Kernels {
		if k.Name == name {
			return k
		}
	}
	t.Fatalf("kernel %s missing", name)
	return Kernel{}
}

// Figure 8: mcf runs 55% slower inside the enclave.
func TestMcfSlowdown(t *testing.T) {
	r := kernel(t, "mcf").Run(11, 4)
	t.Logf("mcf slowdown = %.2fx (paper: 1.55x)", r.Slowdown)
	if r.Slowdown < 1.35 || r.Slowdown > 1.75 {
		t.Errorf("mcf slowdown = %.2f, want ~1.55", r.Slowdown)
	}
	if r.PageFaults > 20000 {
		t.Errorf("mcf should fit the EPC, got %d faults", r.PageFaults)
	}
}

// Figure 8: libquantum runs 5.2x slower — its 96 MB working set exceeds
// the 93 MB EPC and pages on every sweep.
func TestLibquantumSlowdown(t *testing.T) {
	r := kernel(t, "libquantum").Run(13, 3)
	t.Logf("libquantum slowdown = %.2fx, %d faults (paper: 5.2x)", r.Slowdown, r.PageFaults)
	if r.Slowdown < 4.2 || r.Slowdown > 6.2 {
		t.Errorf("libquantum slowdown = %.2f, want ~5.2", r.Slowdown)
	}
	if r.PageFaults < 20000 {
		t.Errorf("libquantum must thrash the EPC, got only %d faults", r.PageFaults)
	}
}

// Figure 8: astar shows a modest slowdown (mixed locality).
func TestAstarSlowdown(t *testing.T) {
	r := kernel(t, "astar").Run(17, 4)
	t.Logf("astar slowdown = %.2fx", r.Slowdown)
	if r.Slowdown < 1.05 || r.Slowdown > 1.55 {
		t.Errorf("astar slowdown = %.2f, want modest (1.1-1.5)", r.Slowdown)
	}
	if r.Slowdown >= kernel(t, "mcf").Run(11, 4).Slowdown {
		t.Error("astar should suffer less than mcf")
	}
}

func TestKernelsDeterministic(t *testing.T) {
	a := kernel(t, "mcf").Run(7, 2)
	b := kernel(t, "mcf").Run(7, 2)
	if a.EnclaveCycles != b.EnclaveCycles || a.PlainCycles != b.PlainCycles {
		t.Fatal("kernel runs not deterministic under equal seeds")
	}
}

func TestEnclaveAlwaysSlower(t *testing.T) {
	for _, k := range Kernels {
		r := k.Run(23, 2)
		if r.Slowdown <= 1.0 {
			t.Errorf("%s: enclave run faster than plaintext (%.2f)", k.Name, r.Slowdown)
		}
	}
}

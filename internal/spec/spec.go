// Package spec implements memory-behaviour kernels standing in for the
// SPEC CPU2006 benchmarks the paper runs inside enclaves (Section 3.4,
// Figure 8): mcf (sparse pointer chasing), libquantum (a sequential sweep
// over a 96 MB array that just exceeds the 93 MB EPC, forcing paging), and
// astar (grid search with mixed locality).  Each kernel runs its memory
// pattern through the simulated hierarchy twice — over plaintext and over
// enclave memory — and reports the slowdown, the quantity Figure 8 plots.
package spec

import (
	"hotcalls/internal/mem"
	"hotcalls/internal/sim"
)

// Kernel is one SPEC-like workload.
type Kernel struct {
	Name string
	// Footprint is the working-set size in bytes.
	Footprint uint64
	// run executes one iteration of the kernel's access pattern over
	// [base, base+Footprint) and returns the cycles consumed.
	run func(s *mem.System, rng *sim.RNG, base uint64, footprint uint64) uint64
}

// Kernels lists the three paper workloads.
var Kernels = []Kernel{
	{
		// mcf: network-simplex over a sparse graph — dependent loads
		// at effectively random addresses across a multi-megabyte
		// working set; every access is a demand miss.
		Name:      "mcf",
		Footprint: 40 << 20,
		run:       runPointerChase,
	},
	{
		// libquantum: quantum register simulation — repeated
		// sequential sweeps over a 96 MB state vector.  The paper
		// measured 96 MB of memory against the 93 MB EPC, so the
		// enclave run pages on every sweep (5.2x slowdown).
		Name:      "libquantum",
		Footprint: 96 << 20,
		run:       runSequentialSweep,
	},
	{
		// astar: path-finding over a grid — a hot region that caches
		// well plus excursions into a colder map.
		Name:      "astar",
		Footprint: 16 << 20,
		run:       runGridSearch,
	},
}

func runPointerChase(s *mem.System, rng *sim.RNG, base, footprint uint64) uint64 {
	var clk sim.Clock
	lines := footprint / 64
	// Dependent loads: the next address is derived from the RNG stream,
	// modelling pointer-chasing with no spatial locality.
	const steps = 6000
	for i := 0; i < steps; i++ {
		addr := base + (rng.Uint64()%lines)*64
		s.Load(&clk, addr)
		clk.Advance(12) // arc cost arithmetic between loads
	}
	return clk.Now()
}

func runSequentialSweep(s *mem.System, rng *sim.RNG, base, footprint uint64) uint64 {
	var clk sim.Clock
	// One full pass of read-modify-write over the state vector, in the
	// 256 KB chunks libquantum's gate loop works through.
	const chunk = 256 << 10
	for off := uint64(0); off < footprint; off += chunk {
		n := uint64(chunk)
		if off+n > footprint {
			n = footprint - off
		}
		s.StreamRead(&clk, base+off, n)
		s.StreamWrite(&clk, base+off, n)
		clk.Advance(chunk / 256) // gate phase arithmetic
	}
	return clk.Now()
}

func runGridSearch(s *mem.System, rng *sim.RNG, base, footprint uint64) uint64 {
	var clk sim.Clock
	hotSpan := footprint / 64 // the open list and nearby grid stay hot
	const steps = 6000
	for i := 0; i < steps; i++ {
		if rng.Bool(0.85) {
			s.Load(&clk, base+(rng.Uint64()%(hotSpan/64))*64)
		} else {
			s.Load(&clk, base+(rng.Uint64()%(footprint/64))*64)
		}
		clk.Advance(15) // heuristic evaluation
	}
	return clk.Now()
}

// Result is one kernel's plaintext-vs-enclave comparison.
type Result struct {
	Name          string
	PlainCycles   uint64
	EnclaveCycles uint64
	Slowdown      float64
	PageFaults    uint64
}

// Run executes a kernel in both configurations and reports the slowdown.
// Before timing, every page of the working set is touched once and one
// untimed iteration runs: a few thousand sampled accesses must not be
// dominated by compulsory page faults that the real benchmark amortizes
// over billions of references.  (libquantum still faults during the timed
// sweeps — its working set does not fit the EPC at all.)
func (k Kernel) Run(seed uint64, iterations int) Result {
	measure := func(base uint64) (total, faults uint64) {
		rng := sim.NewRNG(seed)
		s := mem.New(rng)
		var warm sim.Clock
		for p := uint64(0); p < k.Footprint; p += 4096 {
			s.Load(&warm, base+p)
		}
		k.run(s, rng, base, k.Footprint)
		before := s.PageFaults()
		for i := 0; i < iterations; i++ {
			total += k.run(s, rng, base, k.Footprint)
		}
		return total, s.PageFaults() - before
	}
	plainTotal, _ := measure(mem.PlainBase + (1 << 32))
	encTotal, faults := measure(mem.EnclaveBase)
	return Result{
		Name:          k.Name,
		PlainCycles:   plainTotal,
		EnclaveCycles: encTotal,
		Slowdown:      float64(encTotal) / float64(plainTotal),
		PageFaults:    faults,
	}
}

package sim

// Mixture is a discrete latency distribution: value i is drawn with
// probability weight i / sum(weights).  The memory system uses mixtures to
// model DRAM row-buffer behaviour (row hit / row miss / row conflict),
// which is what spreads the cold-cache CDFs of Figure 2 over the
// 12,500-17,000 cycle range.
type Mixture struct {
	Values  []float64
	Weights []float64
}

// Sample draws one value.
func (m Mixture) Sample(r *RNG) float64 {
	return m.Values[r.Pick(m.Weights)]
}

// Median returns the distribution's median value.
func (m Mixture) Median() float64 {
	var total float64
	for _, w := range m.Weights {
		total += w
	}
	cum := 0.0
	for i, w := range m.Weights {
		cum += w
		if cum >= total/2 {
			return m.Values[i]
		}
	}
	return m.Values[len(m.Values)-1]
}

// Mean returns the distribution's expected value.
func (m Mixture) Mean() float64 {
	var total, sum float64
	for i, w := range m.Weights {
		total += w
		sum += w * m.Values[i]
	}
	return sum / total
}

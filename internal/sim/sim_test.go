package sim

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestRNGDifferentSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d collisions between differently seeded streams", same)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestRNGFloat64Mean(t *testing.T) {
	r := NewRNG(9)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if mean < 0.49 || mean > 0.51 {
		t.Fatalf("uniform mean %v, want ~0.5", mean)
	}
}

func TestRNGIntnBounds(t *testing.T) {
	r := NewRNG(11)
	seen := make(map[int]bool)
	for i := 0; i < 10000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) produced only %d distinct values", len(seen))
	}
}

func TestRNGUniform(t *testing.T) {
	r := NewRNG(13)
	for i := 0; i < 10000; i++ {
		v := r.Uniform(100, 200)
		if v < 100 || v >= 200 {
			t.Fatalf("Uniform out of range: %v", v)
		}
	}
}

func TestRNGExpMean(t *testing.T) {
	r := NewRNG(17)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Exp(50)
	}
	mean := sum / n
	if mean < 48 || mean > 52 {
		t.Fatalf("exponential mean %v, want ~50", mean)
	}
}

func TestRNGPickWeights(t *testing.T) {
	r := NewRNG(19)
	counts := make([]int, 3)
	const n = 90000
	for i := 0; i < n; i++ {
		counts[r.Pick([]float64{1, 2, 3})]++
	}
	// Expect roughly 1/6, 2/6, 3/6.
	if f := float64(counts[0]) / n; f < 0.14 || f > 0.20 {
		t.Fatalf("weight-1 fraction %v, want ~1/6", f)
	}
	if f := float64(counts[2]) / n; f < 0.46 || f > 0.54 {
		t.Fatalf("weight-3 fraction %v, want ~1/2", f)
	}
}

func TestLnMatchesMath(t *testing.T) {
	for _, x := range []float64{0.001, 0.1, 0.5, 1, 1.5, 2, 2.718281828, 10, 1000, 1e9} {
		got := ln(x)
		want := math.Log(x)
		if math.Abs(got-want) > 1e-9*math.Max(1, math.Abs(want)) {
			t.Errorf("ln(%v) = %v, want %v", x, got, want)
		}
	}
}

func TestLnProperty(t *testing.T) {
	// ln(a*b) == ln(a) + ln(b)
	f := func(a, b uint32) bool {
		x := float64(a%100000) + 0.5
		y := float64(b%100000) + 0.5
		return math.Abs(ln(x*y)-(ln(x)+ln(y))) < 1e-8
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClockAdvance(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Fatal("zero clock should start at 0")
	}
	c.Advance(100)
	c.AdvanceF(22.7)
	if got := c.Now(); got != 123 {
		t.Fatalf("clock = %d, want 123 (22.7 rounds to 23)", got)
	}
	start := c.Now()
	c.Advance(7)
	if c.Since(start) != 7 {
		t.Fatalf("Since = %d, want 7", c.Since(start))
	}
}

func TestClockNegativeAdvancePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative advance")
		}
	}()
	var c Clock
	c.AdvanceF(-1)
}

func TestSecondsCyclesRoundTrip(t *testing.T) {
	if s := Seconds(FrequencyHz); s != 1.0 {
		t.Fatalf("Seconds(FrequencyHz) = %v, want 1", s)
	}
	if c := Cycles(0.5); c != FrequencyHz/2 {
		t.Fatalf("Cycles(0.5) = %d", c)
	}
}

func TestSampleOrderStatistics(t *testing.T) {
	s := NewSample(5)
	for _, v := range []float64{5, 1, 4, 2, 3} {
		s.Add(v)
	}
	if got := s.Median(); got != 3 {
		t.Fatalf("median = %v, want 3", got)
	}
	if got := s.Min(); got != 1 {
		t.Fatalf("min = %v", got)
	}
	if got := s.Max(); got != 5 {
		t.Fatalf("max = %v", got)
	}
	if got := s.Mean(); got != 3 {
		t.Fatalf("mean = %v", got)
	}
	if got := s.Percentile(0); got != 1 {
		t.Fatalf("p0 = %v", got)
	}
	if got := s.Percentile(100); got != 5 {
		t.Fatalf("p100 = %v", got)
	}
}

func TestSampleFractionBelow(t *testing.T) {
	s := NewSample(10)
	for i := 1; i <= 10; i++ {
		s.Add(float64(i * 100))
	}
	if got := s.FractionBelow(500); got != 0.5 {
		t.Fatalf("FractionBelow(500) = %v, want 0.5", got)
	}
	if got := s.FractionBelow(50); got != 0 {
		t.Fatalf("FractionBelow(50) = %v, want 0", got)
	}
	if got := s.FractionBelow(10000); got != 1 {
		t.Fatalf("FractionBelow(10000) = %v, want 1", got)
	}
}

func TestSampleCDFMonotone(t *testing.T) {
	r := NewRNG(23)
	s := NewSample(1000)
	for i := 0; i < 1000; i++ {
		s.Add(r.Uniform(0, 10000))
	}
	cdf := s.CDF(100)
	if len(cdf) != 100 {
		t.Fatalf("CDF points = %d", len(cdf))
	}
	for i := 1; i < len(cdf); i++ {
		if cdf[i].Value < cdf[i-1].Value || cdf[i].Fraction <= cdf[i-1].Fraction {
			t.Fatalf("CDF not monotone at %d: %+v vs %+v", i, cdf[i-1], cdf[i])
		}
	}
	if cdf[len(cdf)-1].Fraction != 1.0 {
		t.Fatalf("CDF should end at fraction 1, got %v", cdf[len(cdf)-1].Fraction)
	}
}

func TestSamplePercentileProperty(t *testing.T) {
	// Percentile must be monotone in p and bounded by min/max.
	f := func(seed uint64, n uint8) bool {
		r := NewRNG(seed)
		count := int(n%50) + 2
		s := NewSample(count)
		for i := 0; i < count; i++ {
			s.Add(r.Uniform(0, 1e6))
		}
		last := s.Min()
		for p := 0.0; p <= 100; p += 5 {
			v := s.Percentile(p)
			if v < last-1e-9 || v > s.Max()+1e-9 {
				return false
			}
			last = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSampleMedianMatchesSort(t *testing.T) {
	f := func(vals []float64) bool {
		if len(vals) == 0 {
			return true
		}
		clean := make([]float64, 0, len(vals))
		for _, v := range vals {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				clean = append(clean, v)
			}
		}
		if len(clean) == 0 {
			return true
		}
		s := NewSample(len(clean))
		for _, v := range clean {
			s.Add(v)
		}
		med := s.Median()
		sorted := append([]float64(nil), clean...)
		sort.Float64s(sorted)
		// Median must lie between the two middle elements.
		lo := sorted[(len(sorted)-1)/2]
		hi := sorted[len(sorted)/2]
		return med >= lo-1e-9 && med <= hi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestEmptySampleReturnsZero(t *testing.T) {
	// Order statistics of an empty sample are the documented zero value,
	// not a panic: live telemetry snapshots may render before the first
	// observation arrives.
	var s Sample
	if got := s.Median(); got != 0 {
		t.Fatalf("empty median = %v, want 0", got)
	}
	if got := s.Percentile(99.9); got != 0 {
		t.Fatalf("empty p99.9 = %v, want 0", got)
	}
	if got := s.Mean(); got != 0 {
		t.Fatalf("empty mean = %v, want 0", got)
	}
	if got := s.Min(); got != 0 {
		t.Fatalf("empty min = %v, want 0", got)
	}
	if got := s.Max(); got != 0 {
		t.Fatalf("empty max = %v, want 0", got)
	}
	if got := s.Summary(); got != "n=0" {
		t.Fatalf("empty summary = %q", got)
	}
}

func TestSingleElementSample(t *testing.T) {
	var s Sample
	s.Add(620)
	for _, p := range []float64{0, 50, 99.9, 100} {
		if got := s.Percentile(p); got != 620 {
			t.Fatalf("single-element p%v = %v, want 620", p, got)
		}
	}
	if s.Median() != 620 || s.Mean() != 620 || s.Min() != 620 || s.Max() != 620 {
		t.Fatal("single-element order statistics must all return the element")
	}
}

func TestPercentileOutOfRangeStillPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for p out of [0, 100]")
		}
	}()
	var s Sample
	s.Add(1)
	s.Percentile(101)
}

func TestMeasureMethodology(t *testing.T) {
	rng := NewRNG(31)
	res := Measure(rng, func() uint64 { return 10000 })
	total := res.Sample.Len() + res.Discarded
	if total != TotalRuns {
		t.Fatalf("total runs = %d, want %d", total, TotalRuns)
	}
	// Paper observed ~200-300 AEX events out of 200,000 at ~10k-cycle
	// experiments; accept a generous band.
	if res.Discarded < 100 || res.Discarded > 600 {
		t.Fatalf("discarded = %d, want ~200-300", res.Discarded)
	}
	med := res.Sample.Median()
	if med < 10000-TSCAccuracy || med > 10000+TSCAccuracy {
		t.Fatalf("median = %v, want ~10000", med)
	}
}

func TestMeasureNoContaminationForShortRuns(t *testing.T) {
	rng := NewRNG(37)
	res := MeasureN(rng, 10000, func() uint64 { return 100 })
	// 100-cycle experiments are hit ~0.00125% of the time.
	if res.Discarded > 5 {
		t.Fatalf("discarded = %d for tiny experiments", res.Discarded)
	}
}

func TestAEXInjectorRate(t *testing.T) {
	rng := NewRNG(41)
	inj := NewAEXInjector(rng)
	hits := 0
	const n = 200000
	for i := 0; i < n; i++ {
		if inj.Interrupted(10000) {
			hits++
		}
	}
	if inj.Hits() != hits {
		t.Fatalf("Hits() = %d, counted %d", inj.Hits(), hits)
	}
	// Expected: 10000 * 500 / 4e9 = 1.25e-6 per run -> 250 out of 200k.
	if hits < 150 || hits > 400 {
		t.Fatalf("AEX hits = %d, want ~250", hits)
	}
}

func TestBatchMediansStable(t *testing.T) {
	rng := NewRNG(43)
	res := Measure(rng, func() uint64 { return 8640 })
	if len(res.BatchMedians) != BatchCount {
		t.Fatalf("batch medians = %d, want %d", len(res.BatchMedians), BatchCount)
	}
	// A constant experiment has only TSC jitter: spread within a few
	// cycles of the 8,640 median.
	if s := res.BatchSpread(); s > 0.001 {
		t.Fatalf("batch spread = %v for a constant experiment", s)
	}
}

func TestBatchSpreadDetectsDrift(t *testing.T) {
	rng := NewRNG(47)
	n := uint64(0)
	res := Measure(rng, func() uint64 {
		n++
		return 8000 + n/100 // slow upward drift across batches
	})
	if s := res.BatchSpread(); s < 0.05 {
		t.Fatalf("batch spread = %v, drift should be visible", s)
	}
}

package sim

// DefaultSeed is the base seed experiments run under when the user gives
// none.  It is defined as 0 and SeedMix treats it specially: mixing the
// default base with any salt returns the salt unchanged, so the default
// streams are exactly the historical per-fixture seeds and committed
// artifacts (BENCH_hotcalls.json, REPORT.md) stay byte-stable across the
// introduction of user-selectable seeds.
const DefaultSeed uint64 = 0

// SeedMix derives the seed for one fixture or RNG stream from a
// user-chosen base seed and a per-stream salt.  The same (base, salt)
// pair always yields the same stream seed; distinct salts decorrelate the
// streams even for adjacent bases (splitmix64 finalizer).  A DefaultSeed
// base returns the salt itself — the legacy streams.
func SeedMix(base, salt uint64) uint64 {
	if base == DefaultSeed {
		return salt
	}
	z := base + salt*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

package sim

// Frequency of the simulated core, matching the paper's testbed (Intel Core
// i7-6700K at 4 GHz with DVFS disabled).
const FrequencyHz = 4_000_000_000

// Clock is the virtual time-stamp counter of one simulated hardware thread.
// All simulated latencies are expressed in clock cycles; the benchmark
// harness converts to wall-clock time at FrequencyHz when a table or figure
// reports seconds.
//
// The zero value is a clock at cycle zero, ready to use.
type Clock struct {
	cycles uint64
}

// Now returns the current cycle count, the simulated equivalent of RDTSCP.
func (c *Clock) Now() uint64 { return c.cycles }

// Advance moves the clock forward by n cycles.
func (c *Clock) Advance(n uint64) { c.cycles += n }

// AdvanceF moves the clock forward by a fractional cycle cost, rounding to
// the nearest whole cycle.  Substrate cost models accumulate per-cache-line
// fractions (for example 22.7 cycles per prefetched line), so the clock
// accepts float costs at the boundary.
func (c *Clock) AdvanceF(n float64) {
	if n < 0 {
		panic("sim: negative clock advance")
	}
	c.cycles += uint64(n + 0.5)
}

// Since returns the number of cycles elapsed since the given earlier
// reading.
func (c *Clock) Since(start uint64) uint64 { return c.cycles - start }

// Seconds converts a cycle count to seconds at the simulated core
// frequency.
func Seconds(cycles uint64) float64 {
	return float64(cycles) / FrequencyHz
}

// Cycles converts a duration in seconds to cycles at the simulated core
// frequency.
func Cycles(seconds float64) uint64 {
	return uint64(seconds * FrequencyHz)
}

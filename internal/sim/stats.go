package sim

import (
	"fmt"
	"sort"
)

// Sample accumulates latency observations (in cycles) and answers the
// order-statistics questions the paper's tables and CDF figures ask:
// median, arbitrary percentiles, and fraction-below-threshold.
//
// The zero value is an empty sample ready for Add.
type Sample struct {
	values []float64
	sorted bool
}

// NewSample returns a sample with capacity pre-allocated for n
// observations.
func NewSample(n int) *Sample {
	return &Sample{values: make([]float64, 0, n)}
}

// Add records one observation.
func (s *Sample) Add(v float64) {
	s.values = append(s.values, v)
	s.sorted = false
}

// AddCycles records one observation expressed as a cycle count.
func (s *Sample) AddCycles(v uint64) { s.Add(float64(v)) }

// Len reports the number of observations.
func (s *Sample) Len() int { return len(s.values) }

func (s *Sample) sort() {
	if !s.sorted {
		sort.Float64s(s.values)
		s.sorted = true
	}
}

// Median returns the 50th percentile, or 0 on an empty sample (see
// Percentile).
func (s *Sample) Median() float64 { return s.Percentile(50) }

// Percentile returns the p-th percentile (0 <= p <= 100) using linear
// interpolation between closest ranks.  An empty sample has no order
// statistics; rather than panic mid-experiment, it returns the
// documented zero value 0 — callers that must distinguish "empty" from
// "measured zero cycles" check Len first.  A single-element sample
// returns that element for every p.
func (s *Sample) Percentile(p float64) float64 {
	if len(s.values) == 0 {
		return 0
	}
	if p < 0 || p > 100 {
		panic("sim: percentile out of range")
	}
	s.sort()
	if len(s.values) == 1 {
		return s.values[0]
	}
	rank := p / 100 * float64(len(s.values)-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if lo+1 >= len(s.values) {
		return s.values[len(s.values)-1]
	}
	return s.values[lo]*(1-frac) + s.values[lo+1]*frac
}

// Mean returns the arithmetic mean, or 0 on an empty sample.
func (s *Sample) Mean() float64 {
	if len(s.values) == 0 {
		return 0
	}
	var sum float64
	for _, v := range s.values {
		sum += v
	}
	return sum / float64(len(s.values))
}

// Min returns the smallest observation, or 0 on an empty sample.
func (s *Sample) Min() float64 {
	if len(s.values) == 0 {
		return 0
	}
	s.sort()
	return s.values[0]
}

// Max returns the largest observation, or 0 on an empty sample.
func (s *Sample) Max() float64 {
	if len(s.values) == 0 {
		return 0
	}
	s.sort()
	return s.values[len(s.values)-1]
}

// FractionBelow reports the fraction of observations <= threshold.
func (s *Sample) FractionBelow(threshold float64) float64 {
	if len(s.values) == 0 {
		return 0
	}
	s.sort()
	idx := sort.SearchFloat64s(s.values, threshold)
	// Include ties at exactly threshold.
	for idx < len(s.values) && s.values[idx] == threshold {
		idx++
	}
	return float64(idx) / float64(len(s.values))
}

// CDFPoint is one (latency, cumulative-fraction) pair of an empirical CDF.
type CDFPoint struct {
	Value    float64
	Fraction float64
}

// CDF returns the empirical cumulative distribution sampled at n evenly
// spaced fractions, suitable for plotting the paper's Figures 2 and 3.
func (s *Sample) CDF(n int) []CDFPoint {
	if len(s.values) == 0 || n <= 0 {
		return nil
	}
	s.sort()
	points := make([]CDFPoint, 0, n)
	for i := 1; i <= n; i++ {
		f := float64(i) / float64(n)
		idx := int(f*float64(len(s.values))) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(s.values) {
			idx = len(s.values) - 1
		}
		points = append(points, CDFPoint{Value: s.values[idx], Fraction: f})
	}
	return points
}

// Summary is a compact textual digest used by the bench harness.
func (s *Sample) Summary() string {
	if len(s.values) == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%d min=%.0f p50=%.0f p99=%.0f p99.9=%.0f max=%.0f",
		s.Len(), s.Min(), s.Median(), s.Percentile(99), s.Percentile(99.9), s.Max())
}

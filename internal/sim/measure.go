package sim

// This file implements the paper's measurement methodology (Section 3.1):
// each microbenchmark runs as 10 batches of 20,000 experiments (200,000
// total); runs that suffered an Asynchronous Exit (AEX) — the SGX analogue
// of an OS interrupt landing while the enclave runs — are detected by
// monitoring the AEX landing pad and discarded.

// Methodology constants from Section 3.1 of the paper.
const (
	BatchCount    = 10
	RunsPerBatch  = 20000
	TotalRuns     = BatchCount * RunsPerBatch
	TSCAccuracy   = 2 // RDTSCP accuracy in cycles, +/-
	aexRatePerSec = 500
	// AEXCostCycles is what an asynchronous exit adds to a contaminated
	// run: the hardware saves the enclave context to the SSA, exits,
	// the OS services the interrupt, and ERESUME restores the context.
	AEXCostCycles = 12000
)

// AEXInjector models asynchronous exits: OS interrupts arriving at a fixed
// average rate, independent of the enclave's activity.  A measurement of d
// cycles is hit with probability d * rate / frequency.
type AEXInjector struct {
	rng  *RNG
	rate float64 // interrupts per second
	hits int
}

// NewAEXInjector returns an injector with the default interrupt rate
// (about 500/s, which reproduces the paper's observed 200-300 contaminated
// runs out of 200,000 at ~10,000-cycle experiment lengths).
func NewAEXInjector(rng *RNG) *AEXInjector {
	return &AEXInjector{rng: rng, rate: aexRatePerSec}
}

// Interrupted reports whether an experiment of the given duration was hit
// by an asynchronous exit, and counts hits.
func (a *AEXInjector) Interrupted(cycles uint64) bool {
	p := float64(cycles) * a.rate / FrequencyHz
	if a.rng.Float64() < p {
		a.hits++
		return true
	}
	return false
}

// Hits returns the number of asynchronous exits observed so far, the
// simulated equivalent of monitoring the AEX landing pad.
func (a *AEXInjector) Hits() int { return a.hits }

// Result carries the outcome of one full 200,000-run measurement campaign.
type Result struct {
	Sample       *Sample   // retained (uncontaminated) measurements
	Discarded    int       // runs discarded due to asynchronous exits
	BatchMedians []float64 // per-batch medians (stability check)
}

// BatchSpread reports the relative spread of the per-batch medians,
// (max-min)/overall median — the paper's 10-batch structure exists to
// confirm measurements are stable, and so does this.
func (r Result) BatchSpread() float64 {
	if len(r.BatchMedians) == 0 || r.Sample.Len() == 0 {
		return 0
	}
	lo, hi := r.BatchMedians[0], r.BatchMedians[0]
	for _, m := range r.BatchMedians {
		if m < lo {
			lo = m
		}
		if m > hi {
			hi = m
		}
	}
	return (hi - lo) / r.Sample.Median()
}

// Measure runs the paper's measurement campaign for one microbenchmark.
// run must execute the operation under test once and return its latency in
// cycles.  Runs hit by a simulated asynchronous exit are charged
// AEXCostCycles, detected, and discarded, exactly as in Section 3.1.
func Measure(rng *RNG, run func() uint64) Result {
	aex := NewAEXInjector(rng)
	sample := NewSample(TotalRuns)
	discarded := 0
	batchMedians := make([]float64, 0, BatchCount)
	for batch := 0; batch < BatchCount; batch++ {
		batchSample := NewSample(RunsPerBatch)
		for i := 0; i < RunsPerBatch; i++ {
			cycles := run()
			// RDTSCP reads are accurate to +/- 2 cycles; model the
			// quantization jitter.
			cycles = uint64(int64(cycles) + int64(rng.Intn(2*TSCAccuracy+1)) - TSCAccuracy)
			if aex.Interrupted(cycles) {
				// The run really took longer, but the harness
				// spots the AEX and drops the observation.
				discarded++
				continue
			}
			sample.AddCycles(cycles)
			batchSample.AddCycles(cycles)
		}
		if batchSample.Len() > 0 {
			batchMedians = append(batchMedians, batchSample.Median())
		}
	}
	return Result{Sample: sample, Discarded: discarded, BatchMedians: batchMedians}
}

// MeasureN is Measure with a custom number of runs, for quick tests.
func MeasureN(rng *RNG, n int, run func() uint64) Result {
	aex := NewAEXInjector(rng)
	sample := NewSample(n)
	discarded := 0
	for i := 0; i < n; i++ {
		cycles := run()
		cycles = uint64(int64(cycles) + int64(rng.Intn(2*TSCAccuracy+1)) - TSCAccuracy)
		if aex.Interrupted(cycles) {
			discarded++
			continue
		}
		sample.AddCycles(cycles)
	}
	return Result{Sample: sample, Discarded: discarded}
}

package sdk

import (
	"testing"

	"hotcalls/internal/sim"
)

// These tests pin the SDK call paths to the paper's Table 1 and Figure 2.
// Each follows the measurement methodology of Section 3.1: warm up, then
// repeated measurement with the memory hierarchy in the state the paper's
// protocol establishes (nothing flushed for warm runs; full LLC flush
// before each cold run; buffer eviction for the transfer benchmarks).

func calWithin(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if got < want*(1-tol) || got > want*(1+tol) {
		t.Errorf("%s = %.0f, want %.0f +/- %.0f%%", name, got, want, tol*100)
	} else {
		t.Logf("%s = %.0f (paper: %.0f)", name, got, want)
	}
}

func measureECall(f *fixture, n int, setup func(), args func() []Arg) *sim.Sample {
	// Warm up so lazy structures settle.
	for i := 0; i < 50; i++ {
		var clk sim.Clock
		if setup != nil {
			setup()
		}
		f.rt.ECall(&clk, ecallName(args), args()...)
	}
	res := sim.MeasureN(f.p.RNG, n, func() uint64 {
		if setup != nil {
			setup()
		}
		var clk sim.Clock
		if _, err := f.rt.ECall(&clk, ecallName(args), args()...); err != nil {
			panic(err)
		}
		return clk.Now()
	})
	return res.Sample
}

// ecallName picks the ecall by arity: no args = empty, otherwise the
// caller passes a closure that knows its own function; simplified by
// storing the name alongside.
var currentECall = "ecall_empty"

func ecallName(func() []Arg) string { return currentECall }

func TestTable1Row1EcallWarm(t *testing.T) {
	f := newFixture(t)
	currentECall = "ecall_empty"
	s := measureECall(f, 20000, nil, func() []Arg { return nil })
	calWithin(t, "ecall warm median", s.Median(), 8640, 0.02)
	// Figure 2a: with warm cache, 99.9% of calls complete within
	// 8,600-8,680 cycles.
	if lo, hi := s.Percentile(0.05), s.Percentile(99.95); lo < 8500 || hi > 8800 {
		t.Errorf("warm spread [%.0f, %.0f], want within ~[8600, 8680]", lo, hi)
	}
}

func TestTable1Row2EcallCold(t *testing.T) {
	f := newFixture(t)
	currentECall = "ecall_empty"
	s := measureECall(f, 4000, func() { f.p.Mem.EvictAll() }, func() []Arg { return nil })
	calWithin(t, "ecall cold median", s.Median(), 14170, 0.05)
	// Figure 2a: cold calls land between ~12,500 and ~17,000 cycles.
	if lo := s.Percentile(0.1); lo < 11500 {
		t.Errorf("cold p0.1 = %.0f, want >= ~12,000", lo)
	}
	if hi := s.Percentile(99.9); hi > 18500 {
		t.Errorf("cold p99.9 = %.0f, want <= ~17,500", hi)
	}
}

func TestTable1Row4OcallWarm(t *testing.T) {
	f := newFixture(t)
	var ocallCycles uint64
	f.rt.MustBindECall("ecall_empty", func(ctx *Ctx, args []Arg) uint64 {
		start := ctx.Clk.Now()
		if _, err := ctx.OCall("ocall_empty"); err != nil {
			panic(err)
		}
		ocallCycles = ctx.Clk.Since(start)
		return 0
	})
	run := func() uint64 {
		var clk sim.Clock
		if _, err := f.rt.ECall(&clk, "ecall_empty"); err != nil {
			panic(err)
		}
		return ocallCycles
	}
	for i := 0; i < 50; i++ {
		run()
	}
	res := sim.MeasureN(f.p.RNG, 20000, run)
	s := res.Sample
	calWithin(t, "ocall warm median", s.Median(), 8314, 0.02)
	// Figure 2b: warm ocalls complete in 8,200-8,400 cycles.
	if lo, hi := s.Percentile(0.05), s.Percentile(99.95); lo < 8100 || hi > 8500 {
		t.Errorf("warm ocall spread [%.0f, %.0f], want within ~[8200, 8400]", lo, hi)
	}
}

func TestTable1Row5OcallCold(t *testing.T) {
	f := newFixture(t)
	var ocallCycles uint64
	f.rt.MustBindECall("ecall_empty", func(ctx *Ctx, args []Arg) uint64 {
		// Flush the LLC here so the *ocall* path runs cold, without
		// contaminating the measurement with the ecall's own misses.
		ctx.RT.Platform.Mem.EvictAll()
		start := ctx.Clk.Now()
		if _, err := ctx.OCall("ocall_empty"); err != nil {
			panic(err)
		}
		ocallCycles = ctx.Clk.Since(start)
		return 0
	})
	run := func() uint64 {
		var clk sim.Clock
		f.rt.ECall(&clk, "ecall_empty")
		return ocallCycles
	}
	for i := 0; i < 20; i++ {
		run()
	}
	res := sim.MeasureN(f.p.RNG, 4000, run)
	calWithin(t, "ocall cold median", res.Sample.Median(), 14160, 0.06)
}

func TestTable1Row3EcallBufferTransfer(t *testing.T) {
	// 2 KB buffers: to (in) 9,861 / from (out) 11,712 / to&from (in&out)
	// 10,827.  The `out` target is 11,712 per the Section 3.5 text (the
	// table's 11,172 contradicts the paper's own arithmetic).
	cases := []struct {
		fn     string
		median float64
	}{
		{"ecall_in", 9861},
		{"ecall_out", 11712},
		{"ecall_inout", 10827},
	}
	for _, tc := range cases {
		f := newFixture(t)
		var clk sim.Clock
		buf := f.rt.Arena.AllocBuffer(&clk, 2048)
		currentECall = tc.fn
		s := measureECall(f, 4000, func() {
			// The paper evicts the transferred buffers before each
			// measurement (Section 3.2.1).
			f.p.Mem.EvictRange(buf.Addr, 2048)
		}, func() []Arg { return []Arg{Buf(buf), Scalar(2048)} })
		calWithin(t, tc.fn+" 2KB median", s.Median(), tc.median, 0.04)
	}
}

func TestTable1Row6OcallBufferTransfer(t *testing.T) {
	// 2 KB buffers: to (in) 9,252 / from (out) 11,418 / to&from 9,801.
	cases := []struct {
		fn     string
		median float64
	}{
		{"ocall_in", 9252},
		{"ocall_out", 11418},
		{"ocall_inout", 9801},
	}
	for _, tc := range cases {
		f := newFixture(t)
		ebuf := f.enclaveBuf(t, 2048)
		var ocallCycles uint64
		fn := tc.fn
		f.rt.MustBindECall("ecall_empty", func(ctx *Ctx, args []Arg) uint64 {
			start := ctx.Clk.Now()
			if _, err := ctx.OCall(fn, Buf(ebuf), Scalar(2048)); err != nil {
				panic(err)
			}
			ocallCycles = ctx.Clk.Since(start)
			return 0
		})
		run := func() uint64 {
			var clk sim.Clock
			f.rt.ECall(&clk, "ecall_empty")
			return ocallCycles
		}
		for i := 0; i < 50; i++ {
			run()
		}
		res := sim.MeasureN(f.p.RNG, 4000, run)
		calWithin(t, tc.fn+" 2KB median", res.Sample.Median(), tc.median, 0.04)
	}
}

func TestNoRedundantZeroingSavesMemsetCost(t *testing.T) {
	// Removing the redundant zeroing of the untrusted [out] staging
	// buffer should save roughly the byte-wise memset cost (~2 KB cycles
	// for a 2 KB buffer).
	measure := func(nrz bool) float64 {
		f := newFixture(t)
		f.rt.NoRedundantZeroing = nrz
		ebuf := f.enclaveBuf(t, 2048)
		var ocallCycles uint64
		f.rt.MustBindECall("ecall_empty", func(ctx *Ctx, args []Arg) uint64 {
			start := ctx.Clk.Now()
			ctx.OCall("ocall_out", Buf(ebuf), Scalar(2048))
			ocallCycles = ctx.Clk.Since(start)
			return 0
		})
		run := func() uint64 {
			var clk sim.Clock
			f.rt.ECall(&clk, "ecall_empty")
			return ocallCycles
		}
		for i := 0; i < 50; i++ {
			run()
		}
		return sim.MeasureN(f.p.RNG, 2000, run).Sample.Median()
	}
	base := measure(false)
	nrz := measure(true)
	saving := base - nrz
	if saving < 1800 || saving > 2600 {
		t.Errorf("NRZ saving = %.0f cycles, want ~2,100 for a 2 KB buffer", saving)
	} else {
		t.Logf("NRZ saves %.0f cycles on a 2 KB ocall [out]", saving)
	}
}

func TestFigure4BufferSizeScaling(t *testing.T) {
	// Ecall buffer-transfer cost must grow with size, with `out` the
	// most expensive direction at every size (Figure 4's shape).
	sizes := []uint64{1024, 2048, 4096, 8192, 16384}
	prev := map[string]float64{}
	for _, size := range sizes {
		for _, fn := range []string{"ecall_in", "ecall_out", "ecall_inout"} {
			f := newFixture(t)
			var clk sim.Clock
			buf := f.rt.Arena.AllocBuffer(&clk, size)
			currentECall = fn
			sz := size
			s := measureECall(f, 300, func() {
				f.p.Mem.EvictRange(buf.Addr, sz)
			}, func() []Arg { return []Arg{Buf(buf), Scalar(sz)} })
			med := s.Median()
			if med < prev[fn] {
				t.Errorf("%s at %d bytes (%.0f) cheaper than smaller size (%.0f)", fn, size, med, prev[fn])
			}
			prev[fn] = med
		}
		if !(prev["ecall_out"] > prev["ecall_inout"] && prev["ecall_inout"] > prev["ecall_in"]) {
			t.Errorf("size %d: direction ordering wrong: %v", size, prev)
		}
	}
}

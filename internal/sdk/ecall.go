package sdk

import (
	"fmt"

	"hotcalls/internal/dist"
	"hotcalls/internal/edl"
	"hotcalls/internal/mem"
	"hotcalls/internal/sim"
	"hotcalls/internal/telemetry"
)

// Software fixed costs of the ecall path, in cycles.  Together with the
// EENTER/EEXIT microcode costs and the path's cache-line touches these are
// calibrated so an empty warm-cache ecall lands on the paper's 8,640-cycle
// median (Table 1 row 1); see TestEcallWarmMedian.
const (
	ecallPrepFixed     = 1820 // lookup, TCS r/w lock, AVX save, FP checks
	ecallDispatchFixed = 560  // trusted runtime dispatch + checks
	ecallPostFixed     = 400  // AVX restore, lock release, return

	// bufferCheckCost is the pointer-boundary validation edger8r emits
	// per copied pointer parameter.
	bufferCheckCost = 88
)

// ecallGlue is the per-direction fixed marshalling-glue cost of the
// generated wrapper beyond the explicit allocation, zeroing, and copy
// work (parameter re-validation, sgx_ocalloc-style bookkeeping).  The
// values are calibrated on the paper's 2 KB medians (Table 1 row 3, with
// the `out` figure taken as 11,712 from the Section 3.5 text — the table's
// 11,172 is inconsistent with the paper's own 885-cycle saving argument).
var ecallGlue = map[edl.Direction]float64{
	edl.In:    90,
	edl.Out:   218,
	edl.InOut: 424,
	// [zerocopy] pays only ring-membership verification and pointer
	// fix-up — no staging allocation, no copy scheduling.
	edl.ZeroCopy: 36,
}

// ECall invokes a declared trusted function through the full SDK path:
// untrusted prep, marshalling, EENTER, trusted-side checks and copies, the
// handler itself, copy-out, EEXIT, and untrusted epilogue.
func (rt *Runtime) ECall(clk *sim.Clock, name string, args ...Arg) (uint64, error) {
	b := rt.ecalls[name]
	if b == nil {
		if rt.EDL.TrustedFunc(name) == nil {
			return 0, fmt.Errorf("%w: %s", ErrUnknownFunction, name)
		}
		return 0, fmt.Errorf("%w: %s", ErrNotBound, name)
	}
	if err := checkArgs(b.decl, args); err != nil {
		return 0, err
	}
	// Allow-list enforcement: a nested ecall during a pending ocall must
	// be declared in that ocall's allow clause.
	if n := len(rt.ocallStack); n > 0 {
		pending := rt.EDL.UntrustedFunc(rt.ocallStack[n-1])
		allowed := false
		for _, a := range pending.Allowed {
			if a == name {
				allowed = true
				break
			}
		}
		if !allowed {
			return 0, fmt.Errorf("%w: %s during %s", ErrOCallNotAllowed, name, rt.ocallStack[n-1])
		}
	}
	rt.counters[name]++
	rt.tel.ecalls.Inc()
	callStart := clk.Now()

	m := rt.Platform.Mem

	// --- Untrusted prep: locate the enclave, take the TCS pool lock,
	// save AVX state, check FP exceptions, serialize the marshal struct.
	clk.Advance(ecallPrepFixed)
	m.Load(clk, lookupLineAddr)
	m.Store(clk, tcsLockAddr)
	for i := 0; i < avxLines; i++ {
		m.Store(clk, avxSaveAddr+uint64(i)*mem.LineSize)
	}
	m.Store(clk, marshalAddr)

	tcs, err := rt.Enclave.AcquireTCS()
	if err != nil {
		return 0, err
	}
	if err := rt.Enclave.EEnter(clk, tcs); err != nil {
		return 0, err
	}

	// --- Trusted side: validate the marshal struct, apply pointer
	// attributes (Section 3.2.1), run the handler.
	clk.Advance(ecallDispatchFixed)
	m.Load(clk, marshalAddr)

	tr := rt.tel.tracer
	deep := tr.Detailed()
	stageStart := clk.Now()
	inner, finish, err := rt.StageECallArgs(clk, b.decl, args)
	if err != nil {
		rt.Enclave.EExit(clk, tcs)
		return 0, err
	}
	if deep && clk.Now() > stageStart {
		tr.Emit(telemetry.KindMarshal, "stage:"+name, stageStart, clk.Since(stageStart), 0)
	}

	handlerStart := clk.Now()
	ret := b.fn(&Ctx{Clk: clk, RT: rt, TCS: tcs}, inner)
	if deep && clk.Now() > handlerStart {
		tr.Emit(telemetry.KindHandler, "handler:"+name, handlerStart, clk.Since(handlerStart), 0)
	}

	// --- Copy-out phase and staging release.
	copyOutStart := clk.Now()
	finish()
	if deep && clk.Now() > copyOutStart {
		tr.Emit(telemetry.KindMarshal, "copyout:"+name, copyOutStart, clk.Since(copyOutStart), 0)
	}

	if err := rt.Enclave.EExit(clk, tcs); err != nil {
		return 0, err
	}

	// --- Untrusted epilogue: restore AVX state, release the lock.
	clk.Advance(ecallPostFixed)
	for i := 0; i < avxLines; i++ {
		m.Load(clk, avxSaveAddr+uint64(i)*mem.LineSize)
	}
	rt.tel.ecallCycles.ObserveSince(callStart, clk.Now())
	rt.dist.Observe(dist.Ecall, clk.Since(callStart))
	if tr != nil {
		tr.Emit(telemetry.KindEcall, "ecall:"+name, callStart, clk.Since(callStart), 0)
	}
	return ret, nil
}

package sdk

import (
	"errors"
	"testing"

	"hotcalls/internal/edl"
	"hotcalls/internal/sim"
)

// TestStagedBytesDirectionAware proves the marshalling core is
// direction-aware: an out-only parameter pays only the copy-back (N
// staged bytes), half of what an in,out parameter pays (copy-in plus
// copy-back, 2N).  The [out] zeroing goes through memset, not
// stageCopy, so it does not count as moved bytes.
func TestStagedBytesDirectionAware(t *testing.T) {
	const n = 4096

	run := func(call string) uint64 {
		f := newFixture(t)
		var clk sim.Clock
		buf := f.rt.Arena.AllocBuffer(&clk, n)
		before := f.rt.StagedBytes()
		if _, err := f.rt.ECall(&clk, call, Buf(buf), Scalar(n)); err != nil {
			t.Fatal(err)
		}
		return f.rt.StagedBytes() - before
	}

	out := run("ecall_out")
	inout := run("ecall_inout")
	if out != n {
		t.Fatalf("out-only staged %d bytes, want %d (copy-back only)", out, n)
	}
	if inout != 2*n {
		t.Fatalf("in,out staged %d bytes, want %d", inout, 2*n)
	}
	if 2*out != inout {
		t.Fatalf("out-only bytes (%d) should be half of in,out (%d)", out, inout)
	}
}

const zcEDL = `
enclave {
    trusted {
        public int ecall_zc([zerocopy, size=len] uint8_t* buf, size_t len);
        public int ecall_drive([zerocopy, size=len] uint8_t* buf, size_t len);
    };
    untrusted {
        int ocall_zc([zerocopy, size=len] uint8_t* buf, size_t len);
    };
};
`

func newZCFixture(t testing.TB) *fixture {
	t.Helper()
	f := newFixture(t)
	f.rt.EDL = edl.MustParse(zcEDL)
	f.rt.MustBindECall("ecall_zc", func(ctx *Ctx, args []Arg) uint64 {
		// In-place mutation of the shared slab; no copy-back exists to
		// make this visible, so visibility proves pass-through.
		for i := range args[0].Buf.Data {
			args[0].Buf.Data[i] ^= 0xff
		}
		return args[0].Buf.Addr
	})
	f.rt.MustBindECall("ecall_drive", func(ctx *Ctx, args []Arg) uint64 {
		r, err := ctx.OCall("ocall_zc", args[0], args[1])
		if err != nil {
			panic(err)
		}
		return r
	})
	f.rt.MustBindOCall("ocall_zc", func(ctx *Ctx, args []Arg) uint64 {
		for i := range args[0].Buf.Data {
			args[0].Buf.Data[i]++
		}
		return args[0].Buf.Addr
	})
	return f
}

// TestZeroCopyECallPassThrough checks that a ring-backed [zerocopy]
// ecall parameter is handed through unstaged: the trusted handler sees
// the caller's address, in-place writes are visible without any
// copy-back, and zero bytes go through staging copies.
func TestZeroCopyECallPassThrough(t *testing.T) {
	f := newZCFixture(t)
	var clk sim.Clock
	buf := f.rt.Arena.AllocBuffer(&clk, 256)
	if err := f.rt.RegisterSharedRing(buf.Addr, 256); err != nil {
		t.Fatal(err)
	}
	for i := range buf.Data {
		buf.Data[i] = byte(i)
	}
	before := f.rt.StagedBytes()
	ret, err := f.rt.ECall(&clk, "ecall_zc", Buf(buf), Scalar(256))
	if err != nil {
		t.Fatal(err)
	}
	if ret != buf.Addr {
		t.Fatalf("handler saw addr %#x, want caller's %#x", ret, buf.Addr)
	}
	for i, b := range buf.Data {
		if b != byte(i)^0xff {
			t.Fatalf("buf[%d] = %#x, want %#x (in-place write lost)", i, b, byte(i)^0xff)
		}
	}
	if moved := f.rt.StagedBytes() - before; moved != 0 {
		t.Fatalf("zerocopy call staged %d bytes, want 0", moved)
	}
}

// TestZeroCopyRequiresRing checks the safety inversion: a [zerocopy]
// pointer outside every registered ring is rejected even when it would
// pass the plain outside-the-enclave check, and an in-enclave pointer
// is rejected outright.
func TestZeroCopyRequiresRing(t *testing.T) {
	f := newZCFixture(t)
	var clk sim.Clock
	plain := f.rt.Arena.AllocBuffer(&clk, 128)
	if _, err := f.rt.ECall(&clk, "ecall_zc", Buf(plain), Scalar(128)); !errors.Is(err, ErrNotRingBacked) {
		t.Fatalf("unregistered buffer: err = %v, want ErrNotRingBacked", err)
	}
	inEnclave := f.enclaveBuf(t, 128)
	if _, err := f.rt.ECall(&clk, "ecall_zc", Buf(inEnclave), Scalar(128)); !errors.Is(err, ErrInsecurePointer) {
		t.Fatalf("in-enclave buffer: err = %v, want ErrInsecurePointer", err)
	}
}

// TestZeroCopyOCallPassThrough checks the ocall side: a ring-backed
// slab crosses outward with no staging frame copy, and the untrusted
// handler's in-place increment is visible to the trusted caller.
func TestZeroCopyOCallPassThrough(t *testing.T) {
	f := newZCFixture(t)
	var clk sim.Clock
	buf := f.rt.Arena.AllocBuffer(&clk, 64)
	if err := f.rt.RegisterSharedRing(buf.Addr, 64); err != nil {
		t.Fatal(err)
	}
	before := f.rt.StagedBytes()
	ret, err := f.rt.ECall(&clk, "ecall_drive", Buf(buf), Scalar(64))
	if err != nil {
		t.Fatal(err)
	}
	if ret != buf.Addr {
		t.Fatalf("ocall handler saw addr %#x, want %#x", ret, buf.Addr)
	}
	for i, b := range buf.Data {
		if b != 1 {
			t.Fatalf("buf[%d] = %d, want 1 (in-place increment lost)", i, b)
		}
	}
	if moved := f.rt.StagedBytes() - before; moved != 0 {
		t.Fatalf("zerocopy ocall staged %d bytes, want 0", moved)
	}
}

// TestRegisterSharedRingRejectsEnclaveOverlap checks that ring
// registration refuses regions touching enclave memory: ring payloads
// are untrusted shared memory by definition.
func TestRegisterSharedRingRejectsEnclaveOverlap(t *testing.T) {
	f := newZCFixture(t)
	if err := f.rt.RegisterSharedRing(f.e.Base(), 4096); !errors.Is(err, ErrInsecurePointer) {
		t.Fatalf("err = %v, want ErrInsecurePointer", err)
	}
	if err := f.rt.RegisterSharedRing(0x1000, 0); !errors.Is(err, ErrNotRingBacked) {
		t.Fatalf("empty region: err = %v, want ErrNotRingBacked", err)
	}
}

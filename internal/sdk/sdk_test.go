package sdk

import (
	"bytes"
	"errors"
	"testing"

	"hotcalls/internal/edl"
	"hotcalls/internal/sgx"
	"hotcalls/internal/sim"
)

const testEDL = `
enclave {
    trusted {
        public int ecall_empty(void);
        public int ecall_in([in, size=len] uint8_t* buf, size_t len);
        public int ecall_out([out, size=len] uint8_t* buf, size_t len);
        public int ecall_inout([in, out, size=len] uint8_t* buf, size_t len);
        public int ecall_usercheck([user_check] uint8_t* buf);
        public int ecall_callsout([in, size=len] uint8_t* buf, size_t len);
        public int ecall_str([in, string] char* s);
        public int ecall_allowed(void);
    };
    untrusted {
        int ocall_empty(void) allow(ecall_allowed);
        int ocall_in([in, size=len] uint8_t* buf, size_t len);
        int ocall_out([out, size=len] uint8_t* buf, size_t len);
        int ocall_inout([in, out, size=len] uint8_t* buf, size_t len);
        int ocall_unbound(void);
    };
};
`

type fixture struct {
	p  *sgx.Platform
	e  *sgx.Enclave
	rt *Runtime
}

func newFixture(t testing.TB) *fixture {
	t.Helper()
	p := sgx.NewPlatform(42)
	var clk sim.Clock
	e := p.ECreate(&clk, 64<<20, 4, sgx.Attributes{})
	for i := 0; i < 4; i++ {
		if err := e.EAdd(&clk, uint64(i)*sgx.PageSize, make([]byte, sgx.PageSize)); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.EInit(&clk); err != nil {
		t.Fatal(err)
	}
	rt := New(p, e, edl.MustParse(testEDL))

	rt.MustBindECall("ecall_empty", func(ctx *Ctx, args []Arg) uint64 { return 7 })
	rt.MustBindECall("ecall_in", func(ctx *Ctx, args []Arg) uint64 {
		var sum uint64
		for _, b := range args[0].Buf.Data {
			sum += uint64(b)
		}
		return sum
	})
	rt.MustBindECall("ecall_out", func(ctx *Ctx, args []Arg) uint64 {
		for i := range args[0].Buf.Data {
			args[0].Buf.Data[i] = byte(i)
		}
		return 0
	})
	rt.MustBindECall("ecall_inout", func(ctx *Ctx, args []Arg) uint64 {
		for i := range args[0].Buf.Data {
			args[0].Buf.Data[i] ^= 0xff
		}
		return 0
	})
	rt.MustBindECall("ecall_usercheck", func(ctx *Ctx, args []Arg) uint64 {
		args[0].Buf.Data[0] = 0x5a
		return uint64(args[0].Buf.Addr & 0xffff)
	})
	rt.MustBindECall("ecall_callsout", func(ctx *Ctx, args []Arg) uint64 {
		r, err := ctx.OCall("ocall_in", args[0], args[1])
		if err != nil {
			panic(err)
		}
		return r
	})
	rt.MustBindECall("ecall_str", func(ctx *Ctx, args []Arg) uint64 {
		return uint64(len(args[0].Buf.Data))
	})
	rt.MustBindECall("ecall_allowed", func(ctx *Ctx, args []Arg) uint64 { return 1 })

	rt.MustBindOCall("ocall_empty", func(ctx *Ctx, args []Arg) uint64 { return 9 })
	rt.MustBindOCall("ocall_in", func(ctx *Ctx, args []Arg) uint64 {
		var sum uint64
		for _, b := range args[0].Buf.Data {
			sum += uint64(b)
		}
		return sum
	})
	rt.MustBindOCall("ocall_out", func(ctx *Ctx, args []Arg) uint64 {
		for i := range args[0].Buf.Data {
			args[0].Buf.Data[i] = byte(i * 3)
		}
		return 0
	})
	rt.MustBindOCall("ocall_inout", func(ctx *Ctx, args []Arg) uint64 {
		for i := range args[0].Buf.Data {
			args[0].Buf.Data[i]++
		}
		return 0
	})
	return &fixture{p: p, e: e, rt: rt}
}

// enclaveBuf allocates an in-enclave buffer for ocall sources.
func (f *fixture) enclaveBuf(t testing.TB, size int) *Buffer {
	t.Helper()
	var clk sim.Clock
	addr, err := f.e.Alloc(&clk, uint64(size))
	if err != nil {
		t.Fatal(err)
	}
	return &Buffer{Addr: addr, Data: make([]byte, size)}
}

func TestECallEmptyReturns(t *testing.T) {
	f := newFixture(t)
	var clk sim.Clock
	ret, err := f.rt.ECall(&clk, "ecall_empty")
	if err != nil {
		t.Fatal(err)
	}
	if ret != 7 {
		t.Fatalf("ret = %d, want 7", ret)
	}
	if clk.Now() == 0 {
		t.Fatal("no cycles charged")
	}
}

func TestECallInDataArrives(t *testing.T) {
	f := newFixture(t)
	var clk sim.Clock
	buf := f.rt.Arena.AllocBuffer(&clk, 256)
	var want uint64
	for i := range buf.Data {
		buf.Data[i] = byte(i)
		want += uint64(byte(i))
	}
	ret, err := f.rt.ECall(&clk, "ecall_in", Buf(buf), Scalar(256))
	if err != nil {
		t.Fatal(err)
	}
	if ret != want {
		t.Fatalf("sum = %d, want %d", ret, want)
	}
}

func TestECallOutDataReturns(t *testing.T) {
	f := newFixture(t)
	var clk sim.Clock
	buf := f.rt.Arena.AllocBuffer(&clk, 128)
	for i := range buf.Data {
		buf.Data[i] = 0xee // must be overwritten by the zeroed staging copy
	}
	if _, err := f.rt.ECall(&clk, "ecall_out", Buf(buf), Scalar(128)); err != nil {
		t.Fatal(err)
	}
	for i, b := range buf.Data {
		if b != byte(i) {
			t.Fatalf("buf[%d] = %#x, want %#x", i, b, byte(i))
		}
	}
}

func TestECallOutStagingZeroed(t *testing.T) {
	// The enclave staging buffer for [out] must arrive zeroed even if a
	// previous call left secret data at the same heap address.
	f := newFixture(t)
	var clk sim.Clock
	seen := make(chan []byte, 1)
	f.rt.MustBindECall("ecall_out", func(ctx *Ctx, args []Arg) uint64 {
		cp := append([]byte(nil), args[0].Buf.Data...)
		select {
		case seen <- cp:
		default:
		}
		return 0
	})
	buf := f.rt.Arena.AllocBuffer(&clk, 64)
	f.rt.ECall(&clk, "ecall_out", Buf(buf), Scalar(64))
	got := <-seen
	if !bytes.Equal(got, make([]byte, 64)) {
		t.Fatal("staging buffer not zeroed")
	}
}

func TestECallInOutRoundTrip(t *testing.T) {
	f := newFixture(t)
	var clk sim.Clock
	buf := f.rt.Arena.AllocBuffer(&clk, 64)
	for i := range buf.Data {
		buf.Data[i] = byte(i)
	}
	if _, err := f.rt.ECall(&clk, "ecall_inout", Buf(buf), Scalar(64)); err != nil {
		t.Fatal(err)
	}
	for i, b := range buf.Data {
		if b != byte(i)^0xff {
			t.Fatalf("buf[%d] = %#x", i, b)
		}
	}
}

func TestECallUserCheckZeroCopy(t *testing.T) {
	f := newFixture(t)
	var clk sim.Clock
	buf := f.rt.Arena.AllocBuffer(&clk, 64)
	ret, err := f.rt.ECall(&clk, "ecall_usercheck", Buf(buf))
	if err != nil {
		t.Fatal(err)
	}
	// The handler saw the caller's buffer directly: same address, and
	// its write is visible without any copy-out.
	if ret != buf.Addr&0xffff {
		t.Fatal("user_check buffer was not passed through")
	}
	if buf.Data[0] != 0x5a {
		t.Fatal("user_check write not visible to caller")
	}
}

func TestECallStringLength(t *testing.T) {
	f := newFixture(t)
	var clk sim.Clock
	buf := f.rt.Arena.AllocBuffer(&clk, 32)
	copy(buf.Data, "hello\x00garbage")
	ret, err := f.rt.ECall(&clk, "ecall_str", Buf(buf))
	if err != nil {
		t.Fatal(err)
	}
	if ret != 6 { // "hello" + NUL
		t.Fatalf("string size = %d, want 6", ret)
	}
}

func TestECallStringWithoutNUL(t *testing.T) {
	f := newFixture(t)
	var clk sim.Clock
	buf := f.rt.Arena.AllocBuffer(&clk, 8)
	for i := range buf.Data {
		buf.Data[i] = 'x'
	}
	if _, err := f.rt.ECall(&clk, "ecall_str", Buf(buf)); !errors.Is(err, ErrNoNUL) {
		t.Fatalf("err = %v, want ErrNoNUL", err)
	}
}

func TestECallRejectsEnclavePointer(t *testing.T) {
	// Passing an enclave address as an [in] ecall buffer must fail the
	// boundary check: the SDK refuses to read "caller" data from secure
	// memory (information-leak prevention).
	f := newFixture(t)
	var clk sim.Clock
	evil := f.enclaveBuf(t, 64)
	if _, err := f.rt.ECall(&clk, "ecall_in", Buf(evil), Scalar(64)); !errors.Is(err, ErrInsecurePointer) {
		t.Fatalf("err = %v, want ErrInsecurePointer", err)
	}
}

func TestOCallRejectsOutsidePointer(t *testing.T) {
	// An ocall [in] source must be inside the enclave.
	f := newFixture(t)
	var clk sim.Clock
	outside := f.rt.Arena.AllocBuffer(&clk, 64)
	f.rt.MustBindECall("ecall_empty", func(ctx *Ctx, args []Arg) uint64 {
		_, err := ctx.OCall("ocall_in", Buf(outside), Scalar(64))
		if !errors.Is(err, ErrInsecurePointer) {
			t.Errorf("err = %v, want ErrInsecurePointer", err)
		}
		return 0
	})
	f.rt.ECall(&clk, "ecall_empty")
}

func TestOCallInDataArrives(t *testing.T) {
	f := newFixture(t)
	var clk sim.Clock
	src := f.enclaveBuf(t, 100)
	var want uint64
	for i := range src.Data {
		src.Data[i] = byte(i * 7)
		want += uint64(byte(i * 7))
	}
	ret, err := f.rt.ECall(&clk, "ecall_callsout", Buf(mustPlain(f, &clk, src.Data)), Scalar(100))
	if err != nil {
		t.Fatal(err)
	}
	if ret != want {
		t.Fatalf("ocall sum = %d, want %d", ret, want)
	}
}

// mustPlain copies data into a fresh plain buffer.
func mustPlain(f *fixture, clk *sim.Clock, data []byte) *Buffer {
	b := f.rt.Arena.AllocBuffer(clk, uint64(len(data)))
	copy(b.Data, data)
	return b
}

func TestOCallOutCopiesBack(t *testing.T) {
	f := newFixture(t)
	var clk sim.Clock
	dst := f.enclaveBuf(t, 64)
	f.rt.MustBindECall("ecall_empty", func(ctx *Ctx, args []Arg) uint64 {
		if _, err := ctx.OCall("ocall_out", Buf(dst), Scalar(64)); err != nil {
			t.Errorf("ocall_out: %v", err)
		}
		return 0
	})
	f.rt.ECall(&clk, "ecall_empty")
	for i, b := range dst.Data {
		if b != byte(i*3) {
			t.Fatalf("dst[%d] = %#x, want %#x", i, b, byte(i*3))
		}
	}
}

func TestOCallInOutRoundTrip(t *testing.T) {
	f := newFixture(t)
	var clk sim.Clock
	buf := f.enclaveBuf(t, 32)
	for i := range buf.Data {
		buf.Data[i] = byte(i)
	}
	f.rt.MustBindECall("ecall_empty", func(ctx *Ctx, args []Arg) uint64 {
		ctx.OCall("ocall_inout", Buf(buf), Scalar(32))
		return 0
	})
	f.rt.ECall(&clk, "ecall_empty")
	for i, b := range buf.Data {
		if b != byte(i)+1 {
			t.Fatalf("buf[%d] = %d", i, b)
		}
	}
}

func TestOCallOutsideEnclaveRejected(t *testing.T) {
	f := newFixture(t)
	var clk sim.Clock
	ctx := &Ctx{Clk: &clk, RT: f.rt}
	if _, err := ctx.OCall("ocall_empty"); !errors.Is(err, ErrOCallOutsideCall) {
		t.Fatalf("err = %v, want ErrOCallOutsideCall", err)
	}
}

func TestNestedECallAllowList(t *testing.T) {
	f := newFixture(t)
	var clk sim.Clock
	var allowedErr, deniedErr error
	f.rt.MustBindOCall("ocall_empty", func(ctx *Ctx, args []Arg) uint64 {
		_, allowedErr = ctx.RT.ECall(ctx.Clk, "ecall_allowed")
		_, deniedErr = ctx.RT.ECall(ctx.Clk, "ecall_empty")
		return 0
	})
	f.rt.MustBindECall("ecall_str", func(ctx *Ctx, args []Arg) uint64 {
		ctx.OCall("ocall_empty")
		return 0
	})
	buf := f.rt.Arena.AllocBuffer(&clk, 4)
	buf.Data[0] = 0
	if _, err := f.rt.ECall(&clk, "ecall_str", Buf(buf)); err != nil {
		t.Fatal(err)
	}
	if allowedErr != nil {
		t.Fatalf("allowed nested ecall failed: %v", allowedErr)
	}
	if !errors.Is(deniedErr, ErrOCallNotAllowed) {
		t.Fatalf("denied nested ecall err = %v, want ErrOCallNotAllowed", deniedErr)
	}
}

func TestUnknownAndUnboundFunctions(t *testing.T) {
	f := newFixture(t)
	var clk sim.Clock
	if _, err := f.rt.ECall(&clk, "nope"); !errors.Is(err, ErrUnknownFunction) {
		t.Fatalf("err = %v", err)
	}
	if err := f.rt.BindECall("nope", nil); !errors.Is(err, ErrUnknownFunction) {
		t.Fatalf("bind err = %v", err)
	}
	var ocallErr error
	f.rt.MustBindECall("ecall_empty", func(ctx *Ctx, args []Arg) uint64 {
		_, ocallErr = ctx.OCall("ocall_unbound")
		return 0
	})
	f.rt.ECall(&clk, "ecall_empty")
	if !errors.Is(ocallErr, ErrNotBound) {
		t.Fatalf("unbound ocall err = %v", ocallErr)
	}
}

func TestArgumentValidation(t *testing.T) {
	f := newFixture(t)
	var clk sim.Clock
	if _, err := f.rt.ECall(&clk, "ecall_in"); !errors.Is(err, ErrArgCount) {
		t.Fatalf("err = %v, want ErrArgCount", err)
	}
	buf := f.rt.Arena.AllocBuffer(&clk, 8)
	if _, err := f.rt.ECall(&clk, "ecall_in", Buf(buf), Buf(buf)); !errors.Is(err, ErrArgKind) {
		t.Fatalf("err = %v, want ErrArgKind", err)
	}
	// Declared size larger than the backing buffer.
	if _, err := f.rt.ECall(&clk, "ecall_in", Buf(buf), Scalar(4096)); !errors.Is(err, ErrBufferTooSmall) {
		t.Fatalf("err = %v, want ErrBufferTooSmall", err)
	}
}

func TestCounters(t *testing.T) {
	f := newFixture(t)
	var clk sim.Clock
	f.rt.ECall(&clk, "ecall_empty")
	f.rt.ECall(&clk, "ecall_empty")
	buf := f.rt.Arena.AllocBuffer(&clk, 8)
	f.rt.ECall(&clk, "ecall_callsout", Buf(buf), Scalar(8))
	c := f.rt.Counters()
	if c["ecall_empty"] != 2 || c["ecall_callsout"] != 1 || c["ocall_in"] != 1 {
		t.Fatalf("counters = %v", c)
	}
	f.rt.ResetCounters()
	if len(f.rt.Counters()) != 0 {
		t.Fatal("reset failed")
	}
}

func TestTCSStateAfterCalls(t *testing.T) {
	f := newFixture(t)
	var clk sim.Clock
	f.rt.ECall(&clk, "ecall_empty")
	for i := 0; i < f.e.NumTCS(); i++ {
		if f.e.TCSByIndex(i).Entered() {
			t.Fatalf("TCS %d leaked in entered state", i)
		}
	}
}

func TestSpinLockMutualExclusion(t *testing.T) {
	var l SpinLock
	counter := 0
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func() {
			for i := 0; i < 1000; i++ {
				l.Lock()
				counter++
				l.Unlock()
			}
			done <- struct{}{}
		}()
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	if counter != 4000 {
		t.Fatalf("counter = %d, want 4000 (lost updates)", counter)
	}
}

func TestSpinLockTryLock(t *testing.T) {
	var l SpinLock
	if !l.TryLock() {
		t.Fatal("TryLock on free lock failed")
	}
	if l.TryLock() {
		t.Fatal("TryLock on held lock succeeded")
	}
	l.Unlock()
	if !l.TryLock() {
		t.Fatal("TryLock after unlock failed")
	}
	l.Unlock()
}

func TestSpinLockDoubleUnlockPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	var l SpinLock
	l.Unlock()
}

func TestCondSignalWakes(t *testing.T) {
	var c Cond
	var mu Mutex
	ready := false
	done := make(chan struct{})
	go func() {
		c.Wait(func() bool {
			mu.Lock()
			defer mu.Unlock()
			return ready
		})
		close(done)
	}()
	mu.Lock()
	ready = true
	mu.Unlock()
	// Broadcast until the waiter observes readiness.
	for {
		c.Broadcast()
		select {
		case <-done:
			return
		default:
		}
	}
}

func TestCountAttributeTransfersCountTimesSizeof(t *testing.T) {
	p := sgx.NewPlatform(50)
	var clk sim.Clock
	e := p.ECreate(&clk, 16<<20, 1, sgx.Attributes{})
	e.EInit(&clk)
	rt := New(p, e, edl.MustParse(`enclave {
		trusted { public int ecall_vec([in, count=n] uint32_t* v, size_t n); };
		untrusted { };
	};`))
	var got int
	rt.MustBindECall("ecall_vec", func(ctx *Ctx, args []Arg) uint64 {
		got = len(args[0].Buf.Data)
		return 0
	})
	buf := rt.Arena.AllocBuffer(&clk, 64)
	// count=5 of uint32_t -> 20 bytes staged.
	if _, err := rt.ECall(&clk, "ecall_vec", Buf(buf), Scalar(5)); err != nil {
		t.Fatal(err)
	}
	if got != 20 {
		t.Fatalf("staged %d bytes, want 20 (5 x sizeof(uint32_t))", got)
	}
	// Overflowing count is rejected.
	if _, err := rt.ECall(&clk, "ecall_vec", Buf(buf), Scalar(100)); !errors.Is(err, ErrBufferTooSmall) {
		t.Fatalf("err = %v, want ErrBufferTooSmall", err)
	}
}

func TestCTypeSizes(t *testing.T) {
	for typ, want := range map[string]uint64{
		"char": 1, "uint8_t": 1, "uint16_t": 2, "int": 4, "uint32_t": 4,
		"long": 8, "size_t": 8, "double": 8, "struct timeval": 8,
	} {
		if got := cTypeSize(typ); got != want {
			t.Errorf("sizeof(%s) = %d, want %d", typ, got, want)
		}
	}
}

func TestUntrustedStackOverflowPanics(t *testing.T) {
	f := newFixture(t)
	ebuf := f.enclaveBuf(t, 2048)
	var clk sim.Clock
	// Leak stack frames by staging without finishing: overflow must be
	// caught loudly, not silently corrupt.
	defer func() {
		if recover() == nil {
			t.Fatal("expected stack-overflow panic")
		}
	}()
	decl := f.rt.EDL.UntrustedFunc("ocall_in")
	for i := 0; i < 1<<20; i++ {
		// StageOCallArgs allocates a staging frame each time; never
		// calling finish() models a leak that must eventually trip
		// the guard.
		f.rt.StageOCallArgs(&clk, decl, []Arg{Buf(ebuf), Scalar(2048)})
	}
}

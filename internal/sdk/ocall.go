package sdk

import (
	"fmt"

	"hotcalls/internal/dist"
	"hotcalls/internal/edl"
	"hotcalls/internal/mem"
	"hotcalls/internal/telemetry"
)

// Software fixed costs of the ocall path, in cycles, calibrated so an
// empty warm-cache ocall lands on the paper's 8,314-cycle median (Table 1
// row 4); see TestOcallWarmMedian.
const (
	ocallMarshalFixed  = 952 // trusted-side marshalling and pointer checks
	ocallDispatchFixed = 736 // untrusted dispatcher: table lookup, frame setup
	ocallReturnFixed   = 790 // trusted-side return handling after ERESUME
	osCodeLines        = 6   // libc/OS entry code touched by the landing fn
)

// ocallGlue mirrors ecallGlue for the ocall wrapper, calibrated on Table 1
// row 6 (9,252 / 11,418 / 9,801 cycles for to / from / to&from at 2 KB).
var ocallGlue = map[edl.Direction]float64{
	edl.In:    536,
	edl.Out:   590,
	edl.InOut: 701,
	// [zerocopy] pays only ring-membership verification and pointer
	// fix-up — no staging frame, no copy scheduling.
	edl.ZeroCopy: 48,
}

// OCall invokes a declared untrusted function from inside a trusted
// handler: trusted marshalling, EEXIT, the untrusted landing function,
// ERESUME, and the copy-back of output buffers into the enclave.
func (ctx *Ctx) OCall(name string, args ...Arg) (uint64, error) {
	if ctx.Router != nil {
		// A HotCalls-resident enclave thread: no EEXIT, the request
		// goes through the shared-memory channel.
		return ctx.Router.RouteOCall(ctx.Clk, name, args...)
	}
	rt, clk := ctx.RT, ctx.Clk
	b := rt.ocalls[name]
	if b == nil {
		if rt.EDL.UntrustedFunc(name) == nil {
			return 0, fmt.Errorf("%w: %s", ErrUnknownFunction, name)
		}
		return 0, fmt.Errorf("%w: %s", ErrNotBound, name)
	}
	if ctx.TCS == nil || !ctx.TCS.Entered() {
		return 0, ErrOCallOutsideCall
	}
	if err := checkArgs(b.decl, args); err != nil {
		return 0, err
	}
	rt.counters[name]++
	rt.tel.ocalls.Inc()
	callStart := clk.Now()

	m := rt.Platform.Mem

	// --- Trusted side: build the ocall frame on the untrusted stack and
	// apply pointer attributes.  Remember: for ocalls, [in] means "into
	// the ocall" (out of the enclave) and [out] means "out of the ocall"
	// (back into the enclave) — Section 3.3.
	clk.Advance(ocallMarshalFixed)

	tr := rt.tel.tracer
	deep := tr.Detailed()
	stageStart := clk.Now()
	outer, finish, err := rt.StageOCallArgs(clk, b.decl, args)
	if err != nil {
		return 0, err
	}
	if deep && clk.Now() > stageStart {
		tr.Emit(telemetry.KindMarshal, "stage:"+name, stageStart, clk.Since(stageStart), 0)
	}

	if err := rt.Enclave.EExit(clk, ctx.TCS); err != nil {
		return 0, err
	}

	// --- Untrusted dispatcher: look up the landing function and run it.
	clk.Advance(ocallDispatchFixed)
	m.Load(clk, ocallTableAddr)
	for i := 0; i < osCodeLines; i++ {
		m.Load(clk, osCodeAddr+uint64(i)*mem.LineSize)
	}
	rt.ocallStack = append(rt.ocallStack, name)
	handlerStart := clk.Now()
	ret := b.fn(&Ctx{Clk: clk, RT: rt}, outer)
	if deep && clk.Now() > handlerStart {
		tr.Emit(telemetry.KindHandler, "handler:"+name, handlerStart, clk.Since(handlerStart), 0)
	}
	rt.ocallStack = rt.ocallStack[:len(rt.ocallStack)-1]

	if err := rt.Enclave.EResume(clk, ctx.TCS); err != nil {
		return 0, err
	}

	// --- Back inside: copy output buffers into the enclave and unwind
	// the insecure stack.
	clk.Advance(ocallReturnFixed)
	copyOutStart := clk.Now()
	finish()
	if deep && clk.Now() > copyOutStart {
		tr.Emit(telemetry.KindMarshal, "copyout:"+name, copyOutStart, clk.Since(copyOutStart), 0)
	}
	rt.tel.ocallCycles.ObserveSince(callStart, clk.Now())
	rt.dist.Observe(dist.Ocall, clk.Since(callStart))
	if tr != nil {
		tr.Emit(telemetry.KindOcall, "ocall:"+name, callStart, clk.Since(callStart), 0)
	}
	return ret, nil
}

package sdk

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// SpinLock is the sgx_spin_lock equivalent: a plain busy-wait lock with no
// OS involvement, usable from both trusted and untrusted code (Section 4.2
// of the paper).  The HotCalls implementation in internal/core builds on
// it.  The zero value is an unlocked lock.
type SpinLock struct {
	state uint32
}

// TryLock attempts to take the lock without spinning.
func (l *SpinLock) TryLock() bool {
	return atomic.CompareAndSwapUint32(&l.state, 0, 1)
}

// Lock spins until the lock is acquired.  The PAUSE instruction in the
// paper's busy-wait loop maps to runtime.Gosched, which also keeps the
// loop live-lock-free on a single hardware thread.
func (l *SpinLock) Lock() {
	for !l.TryLock() {
		runtime.Gosched()
	}
}

// Unlock releases the lock.  Unlocking an unlocked SpinLock panics, as
// that is always a caller bug.
func (l *SpinLock) Unlock() {
	if !atomic.CompareAndSwapUint32(&l.state, 1, 0) {
		panic("sdk: unlock of unlocked SpinLock")
	}
}

// Mutex is the sgx_thread_mutex replacement the porting framework
// substitutes for pthread_mutex_t inside enclaves (Section 6.1).  In the
// simulation it degrades to a plain mutex; the point of modelling it
// separately is that enclave code must not call the OS futex path.
type Mutex struct {
	mu sync.Mutex
}

// Lock acquires the mutex.
func (m *Mutex) Lock() { m.mu.Lock() }

// Unlock releases the mutex.
func (m *Mutex) Unlock() { m.mu.Unlock() }

// Cond is the sgx_thread_cond replacement for pthread_cond_t, used by the
// HotCalls responder to sleep through idle periods (Section 4.2,
// "Conserving resources at idle times").
type Cond struct {
	once sync.Once
	mu   sync.Mutex
	c    *sync.Cond
}

func (c *Cond) init() {
	c.once.Do(func() { c.c = sync.NewCond(&c.mu) })
}

// Wait blocks until Signal or Broadcast, re-checking cond each wakeup.
func (c *Cond) Wait(cond func() bool) {
	c.init()
	c.mu.Lock()
	for !cond() {
		c.c.Wait()
	}
	c.mu.Unlock()
}

// Signal wakes one waiter.
func (c *Cond) Signal() {
	c.init()
	c.mu.Lock()
	c.c.Signal()
	c.mu.Unlock()
}

// Broadcast wakes all waiters.
func (c *Cond) Broadcast() {
	c.init()
	c.mu.Lock()
	c.c.Broadcast()
	c.mu.Unlock()
}

package sdk

// Exported software-path cost constants for the analytic cost model
// (internal/profile).  These are sums of the calibrated per-phase fixed
// costs, so the profiler's cross-validation pins against the exact same
// numbers the simulation charges.
const (
	// ECallSoftwareFixed is the fixed (non-memory, non-microcode)
	// software cost of an empty warm ecall: untrusted prep, trusted
	// dispatch, and untrusted epilogue.
	ECallSoftwareFixed = ecallPrepFixed + ecallDispatchFixed + ecallPostFixed

	// OCallSoftwareFixed is the same for an empty warm ocall: trusted
	// marshalling, untrusted dispatch, and trusted return handling.
	OCallSoftwareFixed = ocallMarshalFixed + ocallDispatchFixed + ocallReturnFixed

	// ECallTouchLines counts the cache lines the empty-ecall software
	// path touches outside the leaf instructions: lookup + TCS lock +
	// AVX save + marshal store on the way in, the trusted marshal load,
	// and the AVX restore on the way out.
	ECallTouchLines = 2 + avxLines + 1 + 1 + avxLines

	// OCallTouchLines is the same for the empty-ocall path: the ocall
	// frame header, the dispatch table, and the OS entry code.
	OCallTouchLines = 1 + 1 + osCodeLines
)

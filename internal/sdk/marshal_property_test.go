package sdk

import (
	"bytes"
	"testing"
	"testing/quick"

	"hotcalls/internal/sim"
)

// Property tests for the marshalling semantics of every pointer direction,
// in both call directions, across sizes — the invariants edger8r's
// generated code must uphold.

func TestECallMarshallingProperties(t *testing.T) {
	f := newFixture(t)
	fill := func(b []byte, seed byte) {
		for i := range b {
			b[i] = seed + byte(i*7)
		}
	}

	t.Run("in: handler sees exactly the caller bytes", func(t *testing.T) {
		var seen []byte
		f.rt.MustBindECall("ecall_in", func(ctx *Ctx, args []Arg) uint64 {
			seen = append(seen[:0], args[0].Buf.Data...)
			return 0
		})
		prop := func(seed byte, sz uint16) bool {
			size := uint64(sz%4096) + 1
			var clk sim.Clock
			buf := f.rt.Arena.AllocBuffer(&clk, size)
			fill(buf.Data, seed)
			want := append([]byte(nil), buf.Data...)
			if _, err := f.rt.ECall(&clk, "ecall_in", Buf(buf), Scalar(size)); err != nil {
				return false
			}
			return bytes.Equal(seen, want) && bytes.Equal(buf.Data, want)
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
			t.Error(err)
		}
	})

	t.Run("out: handler sees zeroes, caller sees handler writes", func(t *testing.T) {
		var sawZeroes bool
		f.rt.MustBindECall("ecall_out", func(ctx *Ctx, args []Arg) uint64 {
			sawZeroes = true
			for _, b := range args[0].Buf.Data {
				if b != 0 {
					sawZeroes = false
					break
				}
			}
			for i := range args[0].Buf.Data {
				args[0].Buf.Data[i] = byte(i) ^ 0x3c
			}
			return 0
		})
		prop := func(seed byte, sz uint16) bool {
			size := uint64(sz%4096) + 1
			var clk sim.Clock
			buf := f.rt.Arena.AllocBuffer(&clk, size)
			fill(buf.Data, seed) // stale caller data must be overwritten
			if _, err := f.rt.ECall(&clk, "ecall_out", Buf(buf), Scalar(size)); err != nil {
				return false
			}
			if !sawZeroes {
				return false
			}
			for i, b := range buf.Data {
				if b != byte(i)^0x3c {
					return false
				}
			}
			return true
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
			t.Error(err)
		}
	})

	t.Run("inout: transform round-trips", func(t *testing.T) {
		f.rt.MustBindECall("ecall_inout", func(ctx *Ctx, args []Arg) uint64 {
			for i := range args[0].Buf.Data {
				args[0].Buf.Data[i] = ^args[0].Buf.Data[i]
			}
			return 0
		})
		prop := func(seed byte, sz uint16) bool {
			size := uint64(sz%4096) + 1
			var clk sim.Clock
			buf := f.rt.Arena.AllocBuffer(&clk, size)
			fill(buf.Data, seed)
			want := make([]byte, size)
			for i := range want {
				want[i] = ^buf.Data[i]
			}
			if _, err := f.rt.ECall(&clk, "ecall_inout", Buf(buf), Scalar(size)); err != nil {
				return false
			}
			return bytes.Equal(buf.Data, want)
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
			t.Error(err)
		}
	})
}

func TestOCallMarshallingProperties(t *testing.T) {
	f := newFixture(t)

	t.Run("out: landing writes reach the enclave buffer", func(t *testing.T) {
		f.rt.MustBindOCall("ocall_out", func(ctx *Ctx, args []Arg) uint64 {
			for i := range args[0].Buf.Data {
				args[0].Buf.Data[i] = byte(i) * 5
			}
			return 0
		})
		prop := func(sz uint16) bool {
			size := uint64(sz%2048) + 1
			dst := f.enclaveBuf(t, int(size))
			var outerErr error
			f.rt.MustBindECall("ecall_empty", func(ctx *Ctx, args []Arg) uint64 {
				_, outerErr = ctx.OCall("ocall_out", Buf(dst), Scalar(size))
				return 0
			})
			var clk sim.Clock
			if _, err := f.rt.ECall(&clk, "ecall_empty"); err != nil || outerErr != nil {
				return false
			}
			for i, b := range dst.Data {
				if b != byte(i)*5 {
					return false
				}
			}
			return true
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
			t.Error(err)
		}
	})

	t.Run("in: landing sees exactly the enclave bytes", func(t *testing.T) {
		var seen []byte
		f.rt.MustBindOCall("ocall_in", func(ctx *Ctx, args []Arg) uint64 {
			seen = append(seen[:0], args[0].Buf.Data...)
			return 0
		})
		prop := func(seed byte, sz uint16) bool {
			size := uint64(sz%2048) + 1
			src := f.enclaveBuf(t, int(size))
			for i := range src.Data {
				src.Data[i] = seed ^ byte(i)
			}
			want := append([]byte(nil), src.Data...)
			f.rt.MustBindECall("ecall_empty", func(ctx *Ctx, args []Arg) uint64 {
				ctx.OCall("ocall_in", Buf(src), Scalar(size))
				return 0
			})
			var clk sim.Clock
			if _, err := f.rt.ECall(&clk, "ecall_empty"); err != nil {
				return false
			}
			return bytes.Equal(seen, want)
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
			t.Error(err)
		}
	})
}

// TestOptimizedMemopsPreservesSemantics: the Section 3.5 optimizations
// must change only the cycle cost, never the data path.
func TestOptimizedMemopsPreservesSemantics(t *testing.T) {
	for _, optimized := range []bool{false, true} {
		f := newFixture(t)
		f.rt.OptimizedMemops = optimized
		var clk sim.Clock
		buf := f.rt.Arena.AllocBuffer(&clk, 512)
		for i := range buf.Data {
			buf.Data[i] = 0xee
		}
		if _, err := f.rt.ECall(&clk, "ecall_out", Buf(buf), Scalar(512)); err != nil {
			t.Fatal(err)
		}
		for i, b := range buf.Data {
			if b != byte(i) {
				t.Fatalf("optimized=%v: buf[%d] = %#x", optimized, i, b)
			}
		}
	}
}

// TestOptimizedMemopsCheaper: and it must actually be cheaper.
func TestOptimizedMemopsCheaper(t *testing.T) {
	cost := func(optimized bool) uint64 {
		f := newFixture(t)
		f.rt.OptimizedMemops = optimized
		var clk sim.Clock
		buf := f.rt.Arena.AllocBuffer(&clk, 4096)
		var warm sim.Clock
		for i := 0; i < 10; i++ {
			f.rt.ECall(&warm, "ecall_out", Buf(buf), Scalar(4096))
		}
		var c sim.Clock
		if _, err := f.rt.ECall(&c, "ecall_out", Buf(buf), Scalar(4096)); err != nil {
			t.Fatal(err)
		}
		return c.Now()
	}
	slow, fast := cost(false), cost(true)
	if fast >= slow {
		t.Fatalf("optimized memops not cheaper: %d vs %d", fast, slow)
	}
	if saving := slow - fast; saving < 3000 {
		t.Errorf("4 KB out saving = %d cycles, want ~3,600 (byte-wise memset removal)", saving)
	}
}

package sdk

import (
	"fmt"

	"hotcalls/internal/edl"
	"hotcalls/internal/sim"
)

// This file holds the marshalling core shared by the SDK call paths and by
// HotCalls, plus the memset/memcpy selection controlled by the runtime's
// OptimizedMemops option.  The paper's security argument (Section 5) rests on HotCalls
// using *the same* edger8r-generated marshalling code as the SDK's ecalls
// and ocalls; in this implementation that is literally true — internal/core
// calls StageOCallArgs / StageECallArgs.

// zero applies the configured memset to a staging buffer.
func (rt *Runtime) zero(clk *sim.Clock, addr, size uint64) {
	if rt.OptimizedMemops {
		rt.Platform.Mem.MemsetFast(clk, addr, size)
	} else {
		rt.Platform.Mem.MemsetByteWise(clk, addr, size)
	}
}

// stage applies the configured memcpy to a staging copy.  Every staged
// byte is counted in rt.stagedBytes so the marshalling volume of a call
// shape is directly observable (an out-only parameter pays only the
// copy-back; [zerocopy] parameters never come through here at all).
func (rt *Runtime) stageCopy(clk *sim.Clock, dst, src, size uint64) {
	rt.stagedBytes += size
	if rt.OptimizedMemops {
		rt.Platform.Mem.CopyAVX(clk, dst, src, size)
	} else {
		rt.Platform.Mem.Copy(clk, dst, src, size)
	}
}

type stagedParam struct {
	param   *edl.Param
	origin  *Buffer // the caller-side buffer (plain for ecalls, enclave for ocalls)
	staging *Buffer
	size    uint64
}

// StageOCallArgs performs the trusted-side marshalling of an ocall's
// arguments: pointer checks, staging on the untrusted stack, [in] copies
// and [out] zeroing (skipped under No-Redundant-Zeroing).  It returns the
// argument list for the untrusted landing function and a finish closure
// that copies outputs back into the enclave and unwinds the stack frame.
// On error nothing is leaked: the frame is restored.
func (rt *Runtime) StageOCallArgs(clk *sim.Clock, decl *edl.Func, args []Arg) ([]Arg, func(), error) {
	if err := checkArgs(decl, args); err != nil {
		return nil, nil, err
	}
	m := rt.Platform.Mem
	frame := rt.stackFrame()
	m.Store(clk, rt.stackTop) // frame header line

	outer := make([]Arg, len(args))
	var stagings []stagedParam
	for i := range args {
		p := &decl.Params[i]
		if !p.Pointer || args[i].Buf == nil || p.Direction == edl.UserCheck {
			outer[i] = args[i]
			continue
		}
		src := args[i].Buf
		size, err := resolveSize(decl, p, args, src)
		if err != nil {
			rt.stackRestore(frame)
			return nil, nil, err
		}
		if p.Direction == edl.ZeroCopy {
			// A [zerocopy] buffer lives in untrusted shared-ring
			// memory by construction, so the usual in-enclave check
			// inverts: verify the pointer lies inside a registered
			// ring, then hand it through with no staging and no copy.
			clk.Advance(bufferCheckCost)
			if !rt.RingBacked(src.Addr, size) {
				rt.stackRestore(frame)
				return nil, nil, fmt.Errorf("%w: %s.%s", ErrNotRingBacked, decl.Name, p.Name)
			}
			clk.AdvanceF(ocallGlue[edl.ZeroCopy])
			outer[i] = args[i]
			continue
		}
		// The enclave-side pointer must lie entirely inside the
		// enclave, or copying could exfiltrate via a crafted pointer.
		clk.Advance(bufferCheckCost)
		if !rt.Enclave.InRange(src.Addr, size) {
			rt.stackRestore(frame)
			return nil, nil, fmt.Errorf("%w: %s.%s", ErrInsecurePointer, decl.Name, p.Name)
		}
		clk.AdvanceF(ocallGlue[p.Direction])
		st := &Buffer{Addr: rt.stackAlloc(clk, size), Data: make([]byte, size)}
		switch p.Direction {
		case edl.In:
			rt.stageCopy(clk, st.Addr, src.Addr, size)
			copy(st.Data, src.Data[:size])
		case edl.Out:
			// The SDK zeroes the untrusted staging buffer with its
			// byte-wise memset.  The paper observes this has no
			// security benefit — untrusted code can read that
			// memory anyway — and removing it is the
			// No-Redundant-Zeroing optimization of Section 6.
			if !rt.NoRedundantZeroing {
				rt.zero(clk, st.Addr, size)
			}
		case edl.InOut:
			rt.stageCopy(clk, st.Addr, src.Addr, size)
			copy(st.Data, src.Data[:size])
		}
		stagings = append(stagings, stagedParam{param: p, origin: src, staging: st, size: size})
		outer[i] = Buf(st)
	}
	finish := func() {
		for _, s := range stagings {
			if s.param.Direction == edl.Out || s.param.Direction == edl.InOut {
				rt.stageCopy(clk, s.origin.Addr, s.staging.Addr, s.size)
				copy(s.origin.Data[:s.size], s.staging.Data)
			}
		}
		rt.stackRestore(frame)
	}
	return outer, finish, nil
}

// StageECallArgs performs the trusted-side marshalling of an ecall's
// arguments after entry: pointer checks against the enclave boundary,
// staging allocation on the secure heap, [in] copies and [out] zeroing.
// The finish closure copies outputs back to the caller's buffers and frees
// the staging memory.
func (rt *Runtime) StageECallArgs(clk *sim.Clock, decl *edl.Func, args []Arg) ([]Arg, func(), error) {
	if err := checkArgs(decl, args); err != nil {
		return nil, nil, err
	}
	inner := make([]Arg, len(args))
	var stagings []stagedParam
	unwind := func() {
		for _, s := range stagings {
			rt.Enclave.Free(clk, s.staging.Addr, s.size)
		}
	}
	for i := range args {
		p := &decl.Params[i]
		if !p.Pointer || args[i].Buf == nil || p.Direction == edl.UserCheck {
			inner[i] = args[i]
			continue
		}
		caller := args[i].Buf
		size, err := resolveSize(decl, p, args, caller)
		if err != nil {
			unwind()
			return nil, nil, err
		}
		// The caller's buffer must lie entirely outside the enclave,
		// or the copy could leak or clobber enclave memory.
		clk.Advance(bufferCheckCost)
		if !rt.Enclave.OutsideRange(caller.Addr, size) {
			unwind()
			return nil, nil, fmt.Errorf("%w: %s.%s", ErrInsecurePointer, decl.Name, p.Name)
		}
		if p.Direction == edl.ZeroCopy {
			// Outside the enclave AND inside a registered ring: the
			// trusted side reads/writes the slab in place instead of
			// staging it onto the secure heap.
			if !rt.RingBacked(caller.Addr, size) {
				unwind()
				return nil, nil, fmt.Errorf("%w: %s.%s", ErrNotRingBacked, decl.Name, p.Name)
			}
			clk.AdvanceF(ecallGlue[edl.ZeroCopy])
			inner[i] = args[i]
			continue
		}
		clk.AdvanceF(ecallGlue[p.Direction])
		addr, err := rt.Enclave.Alloc(clk, size)
		if err != nil {
			unwind()
			return nil, nil, err
		}
		st := &Buffer{Addr: addr, Data: make([]byte, size)}
		switch p.Direction {
		case edl.In, edl.InOut:
			rt.stageCopy(clk, st.Addr, caller.Addr, size)
			copy(st.Data, caller.Data[:size])
		case edl.Out:
			// Zero the enclave staging buffer so uninitialized
			// secure-heap bytes cannot leak back out.  This zeroing
			// is a real security measure (unlike the ocall-side
			// one) and is kept even under No-Redundant-Zeroing.
			rt.zero(clk, st.Addr, size)
		}
		stagings = append(stagings, stagedParam{param: p, origin: caller, staging: st, size: size})
		inner[i] = Buf(st)
	}
	finish := func() {
		for _, s := range stagings {
			if s.param.Direction == edl.Out || s.param.Direction == edl.InOut {
				rt.stageCopy(clk, s.origin.Addr, s.staging.Addr, s.size)
				copy(s.origin.Data[:s.size], s.staging.Data)
			}
			rt.Enclave.Free(clk, s.staging.Addr, s.size)
		}
	}
	return inner, finish, nil
}

// TrustedBinding returns the declaration and bound handler of an ecall.
func (rt *Runtime) TrustedBinding(name string) (*edl.Func, Handler, error) {
	b := rt.ecalls[name]
	if b == nil {
		if rt.EDL.TrustedFunc(name) == nil {
			return nil, nil, fmt.Errorf("%w: %s", ErrUnknownFunction, name)
		}
		return nil, nil, fmt.Errorf("%w: %s", ErrNotBound, name)
	}
	return b.decl, b.fn, nil
}

// UntrustedBinding returns the declaration and bound handler of an ocall.
func (rt *Runtime) UntrustedBinding(name string) (*edl.Func, Handler, error) {
	b := rt.ocalls[name]
	if b == nil {
		if rt.EDL.UntrustedFunc(name) == nil {
			return nil, nil, fmt.Errorf("%w: %s", ErrUnknownFunction, name)
		}
		return nil, nil, fmt.Errorf("%w: %s", ErrNotBound, name)
	}
	return b.decl, b.fn, nil
}

// CountCall increments the instrumentation counter for an edge call made
// outside the SDK paths (HotCalls route through here so Table 2 sees them).
func (rt *Runtime) CountCall(name string) { rt.counters[name]++ }

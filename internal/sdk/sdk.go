// Package sdk reimplements the Intel SGX SDK's untrusted and trusted
// runtimes for the simulated platform: ecall dispatch (enclave lookup, TCS
// acquisition, AVX state save, parameter marshalling), ocall frames on the
// untrusted stack, and the edger8r-generated glue semantics for the
// [in]/[out]/[in,out]/[user_check]/[string] pointer attributes — including
// the SDK's notoriously byte-wise memset used to zero `out` buffers, and
// the No-Redundant-Zeroing variant the paper evaluates in Section 6.
//
// The cost decomposition of each path is calibrated so empty warm-cache
// ecalls and ocalls land on the paper's 8,640 / 8,314 cycle medians; cold
// costs, buffer-transfer costs, and in-application costs all emerge from
// the shared memory hierarchy.
package sdk

import (
	"errors"
	"fmt"

	"hotcalls/internal/dist"
	"hotcalls/internal/edl"
	"hotcalls/internal/mem"
	"hotcalls/internal/sgx"
	"hotcalls/internal/sim"
	"hotcalls/internal/telemetry"
)

// Errors returned by the call paths.
var (
	ErrUnknownFunction  = errors.New("sdk: function not declared in the EDL file")
	ErrNotBound         = errors.New("sdk: function declared but no implementation bound")
	ErrArgCount         = errors.New("sdk: argument count does not match declaration")
	ErrArgKind          = errors.New("sdk: scalar passed for pointer parameter or vice versa")
	ErrInsecurePointer  = errors.New("sdk: pointer fails the enclave boundary check")
	ErrOCallNotAllowed  = errors.New("sdk: nested ecall not in the pending ocall's allow list")
	ErrOCallOutsideCall = errors.New("sdk: ocall issued with no thread inside the enclave")
	ErrBufferTooSmall   = errors.New("sdk: declared size exceeds the provided buffer")
	ErrNoNUL            = errors.New("sdk: [string] buffer has no NUL terminator")
	ErrNotRingBacked    = errors.New("sdk: [zerocopy] buffer is not inside a registered shared payload ring")
)

// Buffer is a pointer parameter's backing: a simulated address plus the
// real bytes at that address.  Marshalling really copies the bytes, so the
// data path is testable end to end, while the cycle cost of each copy is
// charged through the memory hierarchy.
type Buffer struct {
	Addr uint64
	Data []byte
}

// Arg is one call argument: either a scalar or a buffer.
type Arg struct {
	Scalar uint64
	Buf    *Buffer
}

// Scalar wraps a by-value argument.
func Scalar(v uint64) Arg { return Arg{Scalar: v} }

// Buf wraps a pointer argument.
func Buf(b *Buffer) Arg { return Arg{Buf: b} }

// Handler implements an edge function.  For ecalls it runs "inside" the
// enclave; for ocalls it is the untrusted landing function.  The returned
// value is the function's scalar result.
type Handler func(ctx *Ctx, args []Arg) uint64

// OCallRouter overrides how a context's OCall reaches untrusted code.
// The HotCalls channel implements it: a trusted handler running on the
// resident enclave worker has no TCS in the "entered" state — its
// out-calls go through shared memory instead of EEXIT/ERESUME.
type OCallRouter interface {
	RouteOCall(clk *sim.Clock, name string, args ...Arg) (uint64, error)
}

// Ctx is the execution context passed to handlers.  Trusted handlers use
// it to issue ocalls.
type Ctx struct {
	Clk    *sim.Clock
	RT     *Runtime
	TCS    *sgx.TCS
	Router OCallRouter // set when the handler runs under HotCalls
}

type binding struct {
	decl *edl.Func
	fn   Handler
}

// Runtime is the SDK runtime for one enclave: the bound edge functions,
// the untrusted arena and stack, and the per-call counters that the
// Section 6.1 porting framework uses to produce Table 2.
type Runtime struct {
	Platform *sgx.Platform
	Enclave  *sgx.Enclave
	EDL      *edl.File
	Arena    *Arena

	// NoRedundantZeroing skips the security-irrelevant zeroing of
	// untrusted staging buffers for ocall [out] parameters
	// (Section 3.3: "zeroing the buffer in the insecure memory has no
	// security benefit").
	NoRedundantZeroing bool

	// OptimizedMemops replaces the SDK's byte-wise memset with a
	// word-wide one and uses AVX memcpy for buffer staging — the
	// "Further optimizations" the paper recommends Intel adopt
	// (Section 3.5).  Unlike NoRedundantZeroing it keeps every zeroing,
	// so it is safe even for the ecall [out] path.
	OptimizedMemops bool

	ecalls map[string]*binding
	ocalls map[string]*binding

	counters   map[string]uint64
	ocallStack []string // pending ocalls, for allow-list enforcement
	stackTop   uint64   // untrusted stack cursor (alloca)

	// tel caches the runtime's telemetry handles; all nil (no-op) until
	// SetTelemetry attaches a registry.
	tel runtimeTel

	// dist records full-resolution per-call latency distributions; nil
	// (one branch per call) until SetDistribution attaches a set.
	dist *dist.Set

	// sharedRings are the registered zero-copy payload-ring regions.
	// A [zerocopy] pointer parameter must lie entirely inside one of
	// them; the marshalling core then skips staging and copies for it
	// (see staging.go).
	sharedRings []ringRegion

	// stagedBytes counts every byte the marshalling core moves through a
	// staging copy (stageCopy), in either direction.  Direction-aware
	// staging is measurable through it: an out-only parameter pays only
	// the copy-back, half the bytes of an in,out one.
	stagedBytes uint64
}

// ringRegion is one registered shared-ring address range.
type ringRegion struct{ base, size uint64 }

// RegisterSharedRing registers [base, base+size) as zero-copy ring
// memory.  The region must lie entirely outside the enclave — ring
// payloads are by construction untrusted shared memory — and
// registration is what distinguishes a deliberate [zerocopy] buffer
// from an arbitrary unchecked pointer (contrast [user_check]).
func (rt *Runtime) RegisterSharedRing(base, size uint64) error {
	if size == 0 {
		return fmt.Errorf("%w: empty ring region", ErrNotRingBacked)
	}
	if !rt.Enclave.OutsideRange(base, size) {
		return fmt.Errorf("%w: ring region overlaps the enclave", ErrInsecurePointer)
	}
	rt.sharedRings = append(rt.sharedRings, ringRegion{base: base, size: size})
	return nil
}

// RingBacked reports whether [addr, addr+size) lies entirely inside one
// registered shared-ring region.
func (rt *Runtime) RingBacked(addr, size uint64) bool {
	for _, r := range rt.sharedRings {
		if addr >= r.base && addr+size <= r.base+r.size {
			return true
		}
	}
	return false
}

// StagedBytes returns the cumulative bytes moved by marshalling staging
// copies since the runtime was created.
func (rt *Runtime) StagedBytes() uint64 { return rt.stagedBytes }

// runtimeTel is the set of handles the SDK call paths touch.
type runtimeTel struct {
	ecalls, ocalls           *telemetry.Counter
	ecallCycles, ocallCycles *telemetry.Histogram
	tracer                   *telemetry.Tracer
}

// SetTelemetry attaches the observability registry to the SDK runtime:
// per-direction call counters, cycle-latency histograms, and (when
// tracing is enabled) one span per boundary crossing.  A nil registry
// detaches.
func (rt *Runtime) SetTelemetry(reg *telemetry.Registry) {
	rt.tel = runtimeTel{
		ecalls:      reg.Counter(telemetry.MetricEcalls),
		ocalls:      reg.Counter(telemetry.MetricOcalls),
		ecallCycles: reg.Histogram(telemetry.MetricEcallCycles),
		ocallCycles: reg.Histogram(telemetry.MetricOcallCycles),
		tracer:      reg.Tracer(),
	}
}

// SetDistribution attaches (or, with nil, detaches) the high-resolution
// distribution set.  Each completed ecall/ocall records its total cycle
// cost under the set's current temperature label, alongside the coarse
// telemetry histograms.
func (rt *Runtime) SetDistribution(d *dist.Set) { rt.dist = d }

// Fixed plain-memory landmarks of the untrusted runtime.  Keeping them at
// stable addresses means repeated calls find them cache-warm, exactly as
// the SDK's data structures behave on real hardware.
const (
	lookupLineAddr = mem.PlainBase + 0x100 // enclave-ID lookup structure
	tcsLockAddr    = mem.PlainBase + 0x140 // TCS pool read/write lock
	avxSaveAddr    = mem.PlainBase + 0x200 // XSAVE area (3 lines modelled)
	marshalAddr    = mem.PlainBase + 0x400 // ecall marshalling struct
	ocallTableAddr = mem.PlainBase + 0x600 // ocall dispatch table
	stackBase      = mem.PlainBase + 0x10000
	stackSize      = 1 << 20
	osCodeAddr     = mem.PlainBase + 0x1000 // libc/OS entry code lines
	arenaBase      = mem.PlainBase + 0x40_0000
	arenaSize      = 1 << 30
)

const avxLines = 3

// New returns a runtime for the enclave with the given EDL interface.
func New(p *sgx.Platform, e *sgx.Enclave, f *edl.File) *Runtime {
	rt := &Runtime{
		Platform: p,
		Enclave:  e,
		EDL:      f,
		Arena:    NewArena(arenaBase, arenaSize),
		ecalls:   make(map[string]*binding),
		ocalls:   make(map[string]*binding),
		counters: make(map[string]uint64),
		stackTop: stackBase,
	}
	return rt
}

// BindECall attaches the trusted implementation of a declared ecall.
func (rt *Runtime) BindECall(name string, fn Handler) error {
	decl := rt.EDL.TrustedFunc(name)
	if decl == nil {
		return fmt.Errorf("%w: %s", ErrUnknownFunction, name)
	}
	rt.ecalls[name] = &binding{decl: decl, fn: fn}
	return nil
}

// BindOCall attaches the untrusted landing function of a declared ocall.
func (rt *Runtime) BindOCall(name string, fn Handler) error {
	decl := rt.EDL.UntrustedFunc(name)
	if decl == nil {
		return fmt.Errorf("%w: %s", ErrUnknownFunction, name)
	}
	rt.ocalls[name] = &binding{decl: decl, fn: fn}
	return nil
}

// MustBindECall is BindECall that panics on error.
func (rt *Runtime) MustBindECall(name string, fn Handler) {
	if err := rt.BindECall(name, fn); err != nil {
		panic(err)
	}
}

// MustBindOCall is BindOCall that panics on error.
func (rt *Runtime) MustBindOCall(name string, fn Handler) {
	if err := rt.BindOCall(name, fn); err != nil {
		panic(err)
	}
}

// Counters returns a snapshot of per-function call counts — the porting
// framework's instrumentation behind Table 2.
func (rt *Runtime) Counters() map[string]uint64 {
	out := make(map[string]uint64, len(rt.counters))
	for k, v := range rt.counters {
		out[k] = v
	}
	return out
}

// ResetCounters zeroes the call counters.
func (rt *Runtime) ResetCounters() {
	rt.counters = make(map[string]uint64)
}

// stackAlloc models alloca on the untrusted stack: pointer bump, no malloc
// (Section 3.3: "no use of malloc here").
func (rt *Runtime) stackAlloc(clk *sim.Clock, size uint64) uint64 {
	clk.Advance(allocaCost)
	addr := rt.stackTop
	rt.stackTop += (size + 63) / 64 * 64
	if rt.stackTop > stackBase+stackSize {
		panic("sdk: untrusted stack overflow")
	}
	return addr
}

// stackFrame returns the current cursor; restoring it frees everything the
// frame allocated, like unwinding the insecure stack on enclave re-entry.
func (rt *Runtime) stackFrame() uint64        { return rt.stackTop }
func (rt *Runtime) stackRestore(frame uint64) { rt.stackTop = frame }

// cTypeSize gives sizeof() for the C type spellings edger8r understands;
// [count=n] parameters transfer n * sizeof(type) bytes.
func cTypeSize(typ string) uint64 {
	switch typ {
	case "char", "uint8_t", "int8_t", "void", "unsigned char":
		return 1
	case "short", "uint16_t", "int16_t", "unsigned short":
		return 2
	case "int", "uint32_t", "int32_t", "unsigned", "unsigned int", "float":
		return 4
	default:
		// long, size_t, uint64_t, double, pointers, structs treated as
		// 8-byte words, the common case on x86-64.
		return 8
	}
}

// resolveSize computes a pointer parameter's transfer size per its EDL
// attributes, matching edger8r's generated logic.
func resolveSize(decl *edl.Func, p *edl.Param, args []Arg, buf *Buffer) (uint64, error) {
	scalarOf := func(name string) (uint64, error) {
		for i := range decl.Params {
			if decl.Params[i].Name == name {
				return args[i].Scalar, nil
			}
		}
		return 0, fmt.Errorf("%w: %s.%s", ErrUnknownFunction, decl.Name, name)
	}
	bounded := func(size uint64) (uint64, error) {
		if size > uint64(len(buf.Data)) {
			return 0, fmt.Errorf("%w: %s.%s (%d > %d)",
				ErrBufferTooSmall, decl.Name, p.Name, size, len(buf.Data))
		}
		return size, nil
	}
	switch {
	case p.IsString:
		for i, b := range buf.Data {
			if b == 0 {
				return uint64(i + 1), nil
			}
		}
		return 0, fmt.Errorf("%w: %s.%s", ErrNoNUL, decl.Name, p.Name)
	case p.SizeParam != "":
		size, err := scalarOf(p.SizeParam)
		if err != nil {
			return 0, err
		}
		return bounded(size)
	case p.CountParm != "":
		count, err := scalarOf(p.CountParm)
		if err != nil {
			return 0, err
		}
		return bounded(count * cTypeSize(p.Type))
	case p.SizeConst != 0:
		return bounded(p.SizeConst)
	default:
		return uint64(len(buf.Data)), nil
	}
}

// checkArgs validates the argument list against the declaration.
func checkArgs(decl *edl.Func, args []Arg) error {
	if len(args) != len(decl.Params) {
		return fmt.Errorf("%w: %s takes %d, got %d", ErrArgCount, decl.Name, len(decl.Params), len(args))
	}
	for i := range decl.Params {
		isPtr := decl.Params[i].Pointer
		hasBuf := args[i].Buf != nil
		if isPtr != hasBuf && hasBuf {
			return fmt.Errorf("%w: %s.%s", ErrArgKind, decl.Name, decl.Params[i].Name)
		}
	}
	return nil
}

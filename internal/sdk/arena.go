package sdk

import "hotcalls/internal/sim"

// Allocation cost constants, in cycles.
const (
	mallocCost = 45 // untrusted heap malloc/free bookkeeping
	allocaCost = 18 // stack pointer bump
)

// Arena is an untrusted-heap allocator handing out simulated plaintext
// addresses with real byte backing.  Freed blocks are reused
// most-recently-freed-first so steady-state callers stay cache-warm.
type Arena struct {
	next uint64
	end  uint64
	free map[uint64][]uint64
}

// NewArena returns an arena over [base, base+size).
func NewArena(base, size uint64) *Arena {
	return &Arena{next: base, end: base + size, free: make(map[uint64][]uint64)}
}

// Alloc returns the address of a new block, 64-byte aligned.
func (a *Arena) Alloc(clk *sim.Clock, size uint64) uint64 {
	clk.Advance(mallocCost)
	size = (size + 63) / 64 * 64
	if list := a.free[size]; len(list) > 0 {
		addr := list[len(list)-1]
		a.free[size] = list[:len(list)-1]
		return addr
	}
	if a.next+size > a.end {
		panic("sdk: untrusted arena exhausted")
	}
	addr := a.next
	a.next += size
	return addr
}

// Free returns a block to the arena.
func (a *Arena) Free(clk *sim.Clock, addr, size uint64) {
	clk.Advance(mallocCost)
	size = (size + 63) / 64 * 64
	a.free[size] = append(a.free[size], addr)
}

// AllocBuffer allocates a zero-initialized buffer with real backing.
func (a *Arena) AllocBuffer(clk *sim.Clock, size uint64) *Buffer {
	return &Buffer{Addr: a.Alloc(clk, size), Data: make([]byte, size)}
}

// Package hotcalls is a Go reproduction of "Regaining Lost Cycles with
// HotCalls: A Fast Interface for SGX Secure Enclaves" (Weisse, Bertacco,
// Austin; ISCA 2017).
//
// The module contains a simulated SGX platform (enclave lifecycle,
// EENTER/EEXIT cost model, Memory Encryption Engine with a functional
// integrity tree, Enclave Page Cache with authenticated paging), a
// reimplementation of the Intel SDK's ecall/ocall runtime and the edger8r
// code generator, the HotCalls interface itself — both a real concurrent
// implementation and its calibrated cycle model — the paper's three
// evaluation applications (memcached, openVPN, lighttpd) ported per
// Section 6.1, and a benchmark harness that regenerates every table and
// figure of the paper's evaluation.
//
// Start with examples/quickstart, then see DESIGN.md for the system
// inventory and EXPERIMENTS.md for paper-vs-measured results.
package hotcalls

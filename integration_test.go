// Integration tests exercising the full stack the way a deployment would:
// platform bring-up, measured enclave build, remote attestation with
// policy, sealed secret provisioning, the Figure 1 call flow over both
// interfaces, enclave-to-enclave communication, and teardown.
package hotcalls_test

import (
	"bytes"
	"testing"

	"hotcalls/internal/core"
	"hotcalls/internal/edl"
	"hotcalls/internal/sdk"
	"hotcalls/internal/sgx"
	"hotcalls/internal/sgx/attest"
	"hotcalls/internal/sim"
)

// TestFullDeploymentLifecycle walks the complete story of Section 2: build
// and measure an enclave, prove its identity to a remote client, provision
// a secret under seal, serve calls through both the SDK and HotCalls
// interfaces, and tear down.
func TestFullDeploymentLifecycle(t *testing.T) {
	// --- Platform and enclave bring-up.
	platform := sgx.NewPlatform(12345)
	var clk sim.Clock
	enclave := platform.ECreate(&clk, 32<<20, 2, sgx.Attributes{ProdID: 9, SVN: 3})
	code := make([]byte, sgx.PageSize)
	copy(code, "secret-service v1.0")
	if err := enclave.EAdd(&clk, 0, code); err != nil {
		t.Fatal(err)
	}
	if err := enclave.EInit(&clk); err != nil {
		t.Fatal(err)
	}

	// --- Remote attestation with a production policy.
	service := attest.NewService()
	qe, err := service.Provision(platform, "prod-host-7")
	if err != nil {
		t.Fatal(err)
	}
	var binding attest.ReportData
	copy(binding[:], "dh-public-key-hash")
	quote, err := qe.Quote(attest.EReport(platform, enclave, sgx.Measurement{}, binding))
	if err != nil {
		t.Fatal(err)
	}
	if err := service.VerifyWithPolicy(quote, attest.Policy{MinSVN: 3}); err != nil {
		t.Fatalf("policy verification: %v", err)
	}

	// --- Secret provisioning: seal to the verified identity; only this
	// enclave on this platform unseals it.
	secret := []byte("api-signing-key-0123456789abcdef")
	blob, err := attest.Seal(platform, enclave, secret)
	if err != nil {
		t.Fatal(err)
	}
	recovered, err := attest.Unseal(platform, enclave, blob)
	if err != nil || !bytes.Equal(recovered, secret) {
		t.Fatalf("unseal: %v", err)
	}

	// --- Serve: the Figure 1 flow.  The trusted function consumes the
	// provisioned secret and reaches the OS through an ocall.
	iface := edl.MustParse(`enclave {
		trusted { public int ecall_sign([in, size=len] uint8_t* msg, size_t len,
		                                [out, size=32] uint8_t* tag); };
		untrusted { long ocall_log_len(int n); };
	};`)
	rt := sdk.New(platform, enclave, iface)
	var logged uint64
	rt.MustBindOCall("ocall_log_len", func(ctx *sdk.Ctx, args []sdk.Arg) uint64 {
		logged = args[0].Scalar
		return 0
	})
	rt.MustBindECall("ecall_sign", func(ctx *sdk.Ctx, args []sdk.Arg) uint64 {
		// A toy MAC using the provisioned secret: XOR-fold (the point
		// is the data flow, not the cryptography).
		msg := args[0].Buf.Data
		tag := args[2].Buf.Data
		for i, b := range msg {
			tag[i%32] ^= b ^ recovered[i%len(recovered)]
		}
		if _, err := ctx.OCall("ocall_log_len", sdk.Scalar(uint64(len(msg)))); err != nil {
			panic(err)
		}
		return uint64(len(msg))
	})

	msg := rt.Arena.AllocBuffer(&clk, 128)
	for i := range msg.Data {
		msg.Data[i] = byte(i)
	}
	tag := rt.Arena.AllocBuffer(&clk, 32)

	var sdkClk sim.Clock
	n, err := rt.ECall(&sdkClk, "ecall_sign", sdk.Buf(msg), sdk.Scalar(128), sdk.Buf(tag))
	if err != nil || n != 128 || logged != 128 {
		t.Fatalf("sdk call: n=%d err=%v logged=%d", n, err, logged)
	}
	sdkTag := append([]byte(nil), tag.Data...)

	// The same call through HotCalls must produce the same answer,
	// faster.
	ch := core.NewChannel(rt, platform.RNG)
	for i := range tag.Data {
		tag.Data[i] = 0
	}
	var hotClk sim.Clock
	n, err = ch.HotECall(&hotClk, "ecall_sign", sdk.Buf(msg), sdk.Scalar(128), sdk.Buf(tag))
	if err != nil || n != 128 {
		t.Fatalf("hot call: n=%d err=%v", n, err)
	}
	if !bytes.Equal(sdkTag, tag.Data) {
		t.Fatal("SDK and HotCalls interfaces computed different results")
	}
	if hotClk.Now() >= sdkClk.Now() {
		t.Fatalf("HotCall (%d cycles) not faster than SDK call (%d)", hotClk.Now(), sdkClk.Now())
	}

	// --- Teardown.
	if err := platform.ERemove(&clk, enclave); err != nil {
		t.Fatal(err)
	}
	if platform.Enclave(enclave.ID()) != nil {
		t.Fatal("enclave survived EREMOVE")
	}
}

// TestEnclaveToEnclave runs two enclaves on one platform that exchange
// data through untrusted memory after mutual local attestation — the
// Ryoan-style pattern Section 7 cites, implemented with this library's
// primitives.
func TestEnclaveToEnclave(t *testing.T) {
	platform := sgx.NewPlatform(777)
	var clk sim.Clock
	build := func(tagByte byte) *sgx.Enclave {
		e := platform.ECreate(&clk, 16<<20, 1, sgx.Attributes{})
		page := make([]byte, sgx.PageSize)
		page[0] = tagByte
		if err := e.EAdd(&clk, 0, page); err != nil {
			t.Fatal(err)
		}
		if err := e.EInit(&clk); err != nil {
			t.Fatal(err)
		}
		return e
	}
	producer := build(1)
	consumer := build(2)

	// Mutual local attestation: each proves itself to the other.
	pToC := attest.EReport(platform, producer, consumer.MRENCLAVE(), attest.ReportData{})
	if err := attest.VerifyReport(platform, consumer, pToC); err != nil {
		t.Fatalf("consumer rejects producer: %v", err)
	}
	cToP := attest.EReport(platform, consumer, producer.MRENCLAVE(), attest.ReportData{})
	if err := attest.VerifyReport(platform, producer, cToP); err != nil {
		t.Fatalf("producer rejects consumer: %v", err)
	}

	// The producer's ocall hands data to untrusted code, which hot-calls
	// into the consumer — crossing two boundaries.
	prodRT := sdk.New(platform, producer, edl.MustParse(`enclave {
		trusted { public int ecall_produce(void); };
		untrusted { long ocall_forward([in, size=len] uint8_t* data, size_t len); };
	};`))
	consRT := sdk.New(platform, consumer, edl.MustParse(`enclave {
		trusted { public int ecall_consume([in, size=len] uint8_t* data, size_t len); };
		untrusted { };
	};`))
	consCh := core.NewChannel(consRT, platform.RNG)

	var received []byte
	consRT.MustBindECall("ecall_consume", func(ctx *sdk.Ctx, args []sdk.Arg) uint64 {
		received = append([]byte(nil), args[0].Buf.Data...)
		return uint64(len(received))
	})
	prodRT.MustBindOCall("ocall_forward", func(ctx *sdk.Ctx, args []sdk.Arg) uint64 {
		// Untrusted relay: the staging buffer is plain memory, which
		// is exactly what the consumer's [in] marshalling expects.
		n, err := consCh.HotECall(ctx.Clk, "ecall_consume", sdk.Buf(args[0].Buf), sdk.Scalar(args[1].Scalar))
		if err != nil {
			panic(err)
		}
		return n
	})
	prodRT.MustBindECall("ecall_produce", func(ctx *sdk.Ctx, args []sdk.Arg) uint64 {
		addr, err := producer.Alloc(ctx.Clk, 64)
		if err != nil {
			panic(err)
		}
		payload := &sdk.Buffer{Addr: addr, Data: bytes.Repeat([]byte{0xC3}, 64)}
		n, err := ctx.OCall("ocall_forward", sdk.Buf(payload), sdk.Scalar(64))
		if err != nil {
			panic(err)
		}
		return n
	})

	var callClk sim.Clock
	n, err := prodRT.ECall(&callClk, "ecall_produce")
	if err != nil || n != 64 {
		t.Fatalf("produce: n=%d err=%v", n, err)
	}
	if !bytes.Equal(received, bytes.Repeat([]byte{0xC3}, 64)) {
		t.Fatal("payload corrupted across two enclave boundaries")
	}
}

GO ?= go

.PHONY: check vet build test test-race bench-overhead experiments bench-json profile

# check is the CI entrypoint: vet, build, race-test the concurrency-heavy
# packages, then the full suite.
check: vet build test-race test

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The HotCall protocol and the telemetry registry are the two packages
# with real cross-goroutine traffic; run them under the race detector.
test-race:
	$(GO) test -race ./internal/core/... ./internal/telemetry/...

# bench-overhead compares the uninstrumented HotCall path against one
# with a live registry attached (the <5% disabled-cost budget).
bench-overhead:
	$(GO) test -run '^$$' -bench 'BenchmarkCall' -benchtime 2s -count 5 ./internal/core/

experiments:
	$(GO) run ./cmd/hotbench -experiments-md EXPERIMENTS.md

# bench-json regenerates the machine-readable results artifact that perf
# changes diff against.
bench-json:
	$(GO) run ./cmd/hotbench -run all -bench-json BENCH_hotcalls.json

# profile runs the microbenchmarks under deep tracing and emits folded
# flame-graph stacks plus a pprof protobuf.
profile:
	$(GO) run ./cmd/hotbench -run table1 -profile hotcalls.folded

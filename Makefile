GO ?= go

.PHONY: check vet build test test-race bench-overhead monitor-overhead dist-overhead flight-overhead bench-scaling bench-zerocopy experiments report bench-json bench-regress profile incident-demo epc-demo whatif-demo

# check is the CI entrypoint: vet, build, race-test the concurrency-heavy
# packages, then the full suite.
check: vet build test-race test

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The HotCall protocol, the telemetry registry, the health monitor, the
# distribution recorder, the EPC paging manager and its observatory, and
# the fabric-routed memcached/lighttpd ports are the packages with real
# cross-goroutine traffic; run them under the race detector.
test-race:
	$(GO) test -race ./internal/core/... ./internal/telemetry/... ./internal/monitor/... ./internal/dist/... ./internal/flight/... ./internal/incident/... ./internal/epc/... ./internal/epcstat/... ./internal/whatif/... ./internal/apps/memcached/... ./internal/apps/lighttpd/... ./internal/apps/openvpn/...

# bench-overhead compares the uninstrumented HotCall path against one
# with a live registry attached (the <5% disabled-cost budget).
bench-overhead:
	$(GO) test -run '^$$' -bench 'BenchmarkCall' -benchtime 2s -count 5 ./internal/core/

experiments:
	$(GO) run ./cmd/hotbench -experiments-md EXPERIMENTS.md

# report regenerates the paper-fidelity report (REPORT.md + report.json):
# the full measurement plan through the high-resolution distribution
# recorder, diffed against the paper's published numbers.  Exits 1 (and
# fails CI) when any fidelity metric lands outside its tolerance band.
# Byte-deterministic: a clean regeneration matches the committed
# artifacts exactly.
report:
	$(GO) run ./cmd/hotreport -md REPORT.md -json report.json

# dist-overhead is the instrumented pair for the distribution recorder:
# the channel HotEcall path bare vs with a live dist.Set recording every
# call (<=1% budget, recorded in EXPERIMENTS.md).
dist-overhead:
	$(GO) test -run '^$$' -bench 'BenchmarkHotECallChannel' -benchtime 2s -count 5 ./internal/core/

# monitor-overhead is the instrumented pair for the continuous monitor:
# the same HotCall loop with and without a live 10ms sampler (<=1%
# budget, recorded in EXPERIMENTS.md).
monitor-overhead:
	$(GO) test -run '^$$' -bench 'BenchmarkCall(Telemetry|Monitored|TickerControl)|BenchmarkTick' -benchtime 2s -count 5 ./internal/monitor/

# flight-overhead is the instrumented pair for the flight recorder: the
# fabric call path bare vs with a live recorder at the default 1-in-256
# sampling (<=1% budget, recorded in EXPERIMENTS.md).  The hotbench
# flight experiment interleaves the pair in one process and gates the
# median throughput ratio under the flight/* band of bench-regress; the
# Go benchmark pair gives the separate-process ns/op view.
flight-overhead:
	$(GO) run ./cmd/hotbench -run flight
	$(GO) test -run '^$$' -bench 'BenchmarkPoolCall$$|BenchmarkPoolCallFlight' -benchtime 1s -count 5 ./internal/core/

# bench-scaling runs the fabric throughput-scaling curve (requesters x
# responders over the CallPool, plus the fabric-routed app paths) and the
# Go benchmark pair behind the >=4x acceptance criterion.  The same
# curve's ratios land in BENCH_hotcalls.json via bench-json and are gated
# by bench-regress under the scaling/* policy.
bench-scaling:
	$(GO) run ./cmd/hotbench -run scaling
	$(GO) test -run '^$$' -bench 'BenchmarkPoolCall|BenchmarkSingleSlotFunnel' -benchtime 1s -count 3 ./internal/core/

# bench-zerocopy runs the staged-vs-zero-copy comparison: the simulated
# 2-32 KB crossing-cost sweep ([in,out] marshalling vs [zerocopy] ring
# pass-through on both edges), the wall-clock fabric pairs (four-copy
# staging vs scatter-gather descriptors, interleaved same-run ratios),
# and the openvpn port's iperf-like streaming driver (windowed vectored
# submit vs synchronous relay).  The sweep series lands in
# zerocopy-sweep.csv (CI uploads it); the same ratios gate under the
# zerocopy/* bands of bench-regress.
bench-zerocopy:
	$(GO) run ./cmd/hotbench -zerocopy-sweep -zerocopy-csv zerocopy-sweep.csv

# bench-json regenerates the machine-readable results artifact that perf
# changes diff against.
bench-json:
	$(GO) run ./cmd/hotbench -run all -bench-json BENCH_hotcalls.json

# bench-regress is the perf-regression gate: run the full suite into a
# scratch artifact and diff it against the committed baseline.  Exits
# non-zero (failing CI) when any metric regressed beyond tolerance.
# Incident bundles captured along the way land in incidents/ so a
# failing gate leaves a postmortem artifact behind (CI uploads it).
bench-regress:
	$(GO) run ./cmd/hotbench -run all -bench-json bench-candidate.json -incident-dir incidents >/dev/null
	$(GO) run ./cmd/benchdiff -baseline BENCH_hotcalls.json -candidate bench-candidate.json -md bench-regress.md

# incident-demo is the black-box postmortem walkthrough: wedge the
# fabric's responder, drive a fallback storm, let the monitor's rule
# fire, and print the captured bundle's critical-path table.  The
# bundle is also spooled to incidents/ for inspection.
incident-demo:
	$(GO) run ./cmd/hotbench -run incident -incident-dir incidents

# epc-demo reproduces the paper's oversubscription cliff against the
# analytic paging model, prices the pressure observatory's hot-path
# overhead, and renders the oversubscribed fault heatmap (the
# /debug/epc?format=svg view) to epc-heatmap.svg (CI uploads it).
epc-demo:
	$(GO) run ./cmd/hotbench -epc-sweep -epc-svg epc-heatmap.svg

# whatif-demo runs the causal what-if profiler validation (predicted vs
# applied virtual speedups per cost component), the shadow-router
# ordering-agreement sweep, the misroute-detection demo, and the
# estimator overhead pair; the full report artifact (the /debug/whatif
# JSON body) lands in whatif.json (CI uploads it).  The same values gate
# under the whatif/* band of bench-regress.
whatif-demo:
	$(GO) run ./cmd/hotbench -whatif -whatif-json whatif.json

# profile runs the microbenchmarks under deep tracing and emits folded
# flame-graph stacks plus a pprof protobuf.
profile:
	$(GO) run ./cmd/hotbench -run table1 -profile hotcalls.folded

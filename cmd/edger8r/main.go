// Command edger8r is the edge-function code generator (the analogue of the
// Intel SDK's edger8r tool): it parses an EDL file declaring ecalls and
// ocalls and generates the trusted and untrusted Go proxy files.
//
// Usage:
//
//	edger8r -edl app.edl -pkg myapp -out .
//
// writes app_t.go (trusted proxies: ocall wrappers), app_u.go (untrusted
// proxies: ecall wrappers), and app_hot.go (HotCalls proxies for both).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"hotcalls/internal/edl"
)

func main() {
	edlPath := flag.String("edl", "", "path to the EDL file (required)")
	pkg := flag.String("pkg", "main", "package name for the generated files")
	out := flag.String("out", ".", "output directory")
	flag.Parse()

	if *edlPath == "" {
		fmt.Fprintln(os.Stderr, "edger8r: -edl is required")
		flag.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(*edlPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "edger8r: %v\n", err)
		os.Exit(1)
	}
	f, err := edl.Parse(string(src))
	if err != nil {
		fmt.Fprintf(os.Stderr, "edger8r: %v\n", err)
		os.Exit(1)
	}
	base := strings.TrimSuffix(filepath.Base(*edlPath), ".edl")
	for suffix, content := range map[string]string{
		"_t.go":   edl.GenerateTrusted(f, *pkg),
		"_u.go":   edl.GenerateUntrusted(f, *pkg),
		"_hot.go": edl.GenerateHotCalls(f, *pkg),
	} {
		path := filepath.Join(*out, base+suffix)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "edger8r: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("wrote", path)
	}
}

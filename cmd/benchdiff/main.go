// Command benchdiff is the perf-regression gate: it diffs a candidate
// hotcalls-bench/v1 artifact against a committed baseline under the
// default tolerance policy, writes a markdown report, and exits 1 when
// any metric regressed beyond tolerance (or vanished).  `make
// bench-regress` and CI run it against BENCH_hotcalls.json.
package main

import (
	"flag"
	"fmt"
	"os"

	"hotcalls/internal/bench"
	"hotcalls/internal/regress"
)

func main() {
	baseline := flag.String("baseline", "BENCH_hotcalls.json", "committed baseline artifact")
	candidate := flag.String("candidate", "", "fresh candidate artifact to gate")
	md := flag.String("md", "", "write the markdown report here ('-' or empty for stdout)")
	tolerance := flag.Float64("tolerance", 0, "override the default tolerance (percent; 0 keeps the policy default)")
	flag.Parse()

	if *candidate == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -candidate is required")
		flag.Usage()
		os.Exit(2)
	}

	base, err := loadReport(*baseline)
	if err != nil {
		fatal(err)
	}
	cand, err := loadReport(*candidate)
	if err != nil {
		fatal(err)
	}

	pol := regress.DefaultPolicy()
	if *tolerance > 0 {
		pol.DefaultTolerancePct = *tolerance
	}
	res := regress.Compare(base, cand, pol)

	out := os.Stdout
	if *md != "" && *md != "-" {
		f, err := os.Create(*md)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		out = f
	}
	if err := res.WriteMarkdown(out); err != nil {
		fatal(err)
	}

	fmt.Fprintln(os.Stderr, res.Summary())
	for _, d := range res.Regressions() {
		fmt.Fprintf(os.Stderr, "  regressed: %s (%s, %s) %+.2f%% beyond %.1f%% tolerance\n",
			d.Key, d.Unit, d.Direction, d.ChangePct, d.TolerancePct)
	}
	if res.Failed() {
		os.Exit(1)
	}
}

func loadReport(path string) (bench.JSONReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return bench.JSONReport{}, err
	}
	return regress.Parse(data)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(1)
}

// Command hotreport runs the paper's full measurement plan through the
// high-resolution distribution recorder and writes the paper-fidelity
// report: REPORT.md (tables + embedded SVG CDFs) and report.json
// (schema hotcalls-report/v1).
//
// Usage:
//
//	hotreport                          # write REPORT.md + report.json
//	hotreport -seed 7 -md /tmp/r.md -json /tmp/r.json
//	hotreport -warm-runs 2000 -cold-runs 500 -app-seconds 0.01  # quick pass
//
// Exit status follows the benchdiff convention: 0 when every fidelity
// metric is within tolerance, 1 when any metric lands outside its band,
// 2 on usage errors.  Output is byte-deterministic under a fixed seed.
package main

import (
	"flag"
	"fmt"
	"os"

	"hotcalls/internal/bench"
	"hotcalls/internal/report"
)

func main() {
	seed := flag.Uint64("seed", 0, "base seed for every random stream; 0 (the default) reproduces the committed REPORT.md byte for byte")
	mdPath := flag.String("md", "REPORT.md", "path for the markdown report ('' to skip)")
	jsonPath := flag.String("json", "report.json", "path for the JSON artifact ('' to skip)")
	warmRuns := flag.Int("warm-runs", 0, "calls per warm series (default: paper scale, 20000)")
	coldRuns := flag.Int("cold-runs", 0, "calls per cold series (default: paper scale, 5000)")
	appSeconds := flag.Float64("app-seconds", 0, "simulated seconds per application point (default 0.05)")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "hotreport: unexpected arguments %q\n", flag.Args())
		flag.Usage()
		os.Exit(2)
	}

	r := report.Build(bench.ReportConfig{
		Seed:       *seed,
		WarmRuns:   *warmRuns,
		ColdRuns:   *coldRuns,
		AppSeconds: *appSeconds,
	})

	if *mdPath != "" {
		if err := os.WriteFile(*mdPath, []byte(r.Markdown()), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "hotreport: %v\n", err)
			os.Exit(2)
		}
		fmt.Println("wrote", *mdPath)
	}
	if *jsonPath != "" {
		buf, err := r.JSON()
		if err == nil {
			err = os.WriteFile(*jsonPath, buf, 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "hotreport: %v\n", err)
			os.Exit(2)
		}
		fmt.Println("wrote", *jsonPath)
	}

	fmt.Printf("fidelity: %d metrics compared\n", len(r.Fidelity.Deltas))
	if !r.FidelityOK() {
		for _, d := range r.Fidelity.Regressions() {
			fmt.Printf("  OUTSIDE TOLERANCE %-32s measured %.2f paper %.2f (%+.1f%%, band ±%.0f%%)\n",
				d.Key, d.Cand, d.Base, d.ChangePct, d.TolerancePct)
		}
		fmt.Println("fidelity: FAIL")
		os.Exit(1)
	}
	fmt.Println("fidelity: PASS")
}

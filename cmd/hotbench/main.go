// Command hotbench regenerates the paper's tables and figures.
//
// Usage:
//
//	hotbench -list
//	hotbench -run table1
//	hotbench -run all -csv out/
//
// Each experiment prints a table comparing measured values against the
// paper's; -csv additionally writes the raw series (CDFs, sweeps) for
// plotting.
//
// Observability flags:
//
//	hotbench -run table1 -metrics          # Prometheus dump after the run
//	hotbench -run table1 -trace out.json   # Chrome trace_event JSON
//	hotbench -run table1 -profile out.folded # cycle-attribution profile
//	hotbench -run all -bench-json BENCH_hotcalls.json
//	hotbench -run all -monitor             # health summary + alerts after the run
//	hotbench -run all -watch               # live monitor table, redrawn in place
//	hotbench -run scaling -flight          # per-callsite flight-recorder table
//	hotbench -run scaling -flight-trace f.json # causal window as Chrome trace
//	hotbench -run incident -incident-dir incidents # postmortem-bundle demo, spooled to disk
//	hotbench -epc-sweep -epc-svg epc-heatmap.svg # EPC oversubscription cliff + fault heatmap
//	hotbench -whatif -whatif-json whatif.json # causal profiler validation + shadow-routing regret
//	hotbench -zerocopy-sweep -zerocopy-csv zerocopy-sweep.csv # staged vs zero-copy ring transfer sweep
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"hotcalls/internal/bench"
	"hotcalls/internal/flight"
	"hotcalls/internal/monitor"
	"hotcalls/internal/profile"
	"hotcalls/internal/telemetry"
)

// traceCapacity bounds the boundary-event ring: enough for a full
// microbenchmark experiment without unbounded memory.
const traceCapacity = 1 << 18

// profileCapacity sizes the deep-tracing ring: per-phase and per-memory-
// operation events are ~20x denser than boundary spans, and the profiler
// wants whole call trees, not just the tail (table1 alone emits ~3M
// events).
const profileCapacity = 1 << 22

func main() {
	list := flag.Bool("list", false, "list available experiments")
	run := flag.String("run", "all", "experiment ID(s) to run, comma-separated, or 'all'")
	csvDir := flag.String("csv", "", "directory to write raw CSV series into")
	mdPath := flag.String("experiments-md", "", "run everything and write the EXPERIMENTS.md report to this path")
	metrics := flag.Bool("metrics", false, "dump all counters and histograms in Prometheus text format after the run")
	tracePath := flag.String("trace", "", "write a Chrome trace_event JSON of boundary crossings to this path")
	profilePath := flag.String("profile", "", "write a cycle-attribution profile: folded flame-graph stacks to this path, pprof protobuf to <path>.pb.gz, breakdown tables to stdout")
	benchJSON := flag.String("bench-json", "", "write machine-readable benchmark results (medians, speedups, metadata) as JSON to this path")
	monitorFlag := flag.Bool("monitor", false, "run the continuous health monitor during the experiments and print its verdict and alerts afterwards")
	watch := flag.Bool("watch", false, "like -monitor, but redraw a live sample table in place while experiments run")
	flightFlag := flag.Bool("flight", false, "attach the flight recorder to every fabric the experiments build and print the per-callsite table afterwards")
	flightTrace := flag.String("flight-trace", "", "like -flight, and also write a Chrome trace_event JSON of the recorder's final causal window to this path")
	incidentDir := flag.String("incident-dir", "", "spool incident bundles captured by the experiments (see -run incident) to this directory as <bundle-id>.json")
	epcSweep := flag.Bool("epc-sweep", false, "shorthand for -run epc: the EPC oversubscription cliff and observer-overhead pair")
	epcSVG := flag.String("epc-svg", "", "write the epc experiment's oversubscribed fault-heatmap SVG (the /debug/epc?format=svg view) to this path")
	whatIfFlag := flag.Bool("whatif", false, "shorthand for -run whatif: causal profiler validation, shadow-routing agreement, and the estimator overhead pair")
	whatIfJSON := flag.String("whatif-json", "", "write the whatif experiment's report artifact (the /debug/whatif JSON body) to this path")
	zcSweep := flag.Bool("zerocopy-sweep", false, "shorthand for -run zerocopy: the staged-vs-zero-copy transfer sweep, fabric pairs, and openvpn streaming")
	zcCSV := flag.String("zerocopy-csv", "", "write the zerocopy experiment's sweep series CSV to this path")
	seed := flag.Uint64("seed", 0, "base seed for every random stream; 0 (the default) reproduces the committed baseline artifacts byte for byte")
	flag.Parse()

	bench.SetSeed(*seed)
	if *incidentDir != "" {
		bench.SetIncidentDir(*incidentDir)
	}
	if *epcSVG != "" {
		bench.SetEPCSVGPath(*epcSVG)
	}
	if *epcSweep {
		*run = "epc"
	}
	if *whatIfJSON != "" {
		bench.SetWhatIfJSON(*whatIfJSON)
		*whatIfFlag = true
	}
	if *whatIfFlag {
		*run = "whatif"
	}
	if *zcCSV != "" {
		bench.SetZeroCopyCSV(*zcCSV)
		*zcSweep = true
	}
	if *zcSweep {
		*run = "zerocopy"
	}

	if *watch {
		*monitorFlag = true
	}
	if *flightTrace != "" {
		*flightFlag = true
	}

	var rec *flight.Recorder
	var flightStop, flightDone chan struct{}
	if *flightFlag {
		rec = flight.New(flight.Options{})
		bench.SetFlight(rec)
		// Digest continuously so per-callsite stats survive fixture
		// teardown: a recorder follows one fabric at a time, and records
		// left undigested when an experiment rebinds it are dropped.
		flightStop = make(chan struct{})
		flightDone = make(chan struct{})
		go func() {
			defer close(flightDone)
			t := time.NewTicker(100 * time.Millisecond)
			defer t.Stop()
			for {
				select {
				case <-flightStop:
					return
				case <-t.C:
					rec.Digest()
				}
			}
		}()
	}

	var reg *telemetry.Registry
	if *metrics || *tracePath != "" || *profilePath != "" || *monitorFlag {
		reg = telemetry.New()
		if *profilePath != "" {
			// Deep tracing feeds both the profiler and -trace.
			reg.EnableDeepTracing(profileCapacity)
		} else if *tracePath != "" {
			reg.EnableTracing(traceCapacity)
		}
		bench.SetTelemetry(reg)
	}

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	if *mdPath != "" {
		if err := os.WriteFile(*mdPath, []byte(bench.Markdown()), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "hotbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("wrote", *mdPath)
		return
	}

	var experiments []bench.Experiment
	if *run == "all" {
		experiments = bench.All()
	} else {
		for _, id := range strings.Split(*run, ",") {
			e := bench.Get(strings.TrimSpace(id))
			if e == nil {
				fmt.Fprintf(os.Stderr, "hotbench: unknown experiment %q (try -list)\n", id)
				os.Exit(1)
			}
			experiments = append(experiments, *e)
		}
	}

	var mon *monitor.Monitor
	var watchStop, watchDone chan struct{}
	if *monitorFlag {
		mon = monitor.New(reg, monitor.Options{Flight: rec})
		mon.Tick() // baseline sample so even sub-interval runs show deltas
		mon.Start()
		if *watch {
			watchStop = make(chan struct{})
			watchDone = make(chan struct{})
			go watchLoop(mon, watchStop, watchDone)
		}
	}

	var reports []*bench.Report
	for _, e := range experiments {
		start := time.Now()
		report := e.Run()
		reports = append(reports, report)
		fmt.Printf("=== %s ===\n%s\n%s(%.1fs)\n\n", report.ID, report.Title, report.Table, time.Since(start).Seconds())
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				fmt.Fprintf(os.Stderr, "hotbench: %v\n", err)
				os.Exit(1)
			}
			for name, content := range report.CSV {
				path := filepath.Join(*csvDir, name)
				if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
					fmt.Fprintf(os.Stderr, "hotbench: %v\n", err)
					os.Exit(1)
				}
				fmt.Printf("wrote %s\n", path)
			}
		}
	}

	if mon != nil {
		mon.Stop()
		mon.Tick() // final cumulative sample so short runs still show data
		if *watch {
			close(watchStop)
			<-watchDone
		}
		fmt.Println("=== monitor ===")
		fmt.Print(mon.RenderText(10))
		if dropped := mon.DroppedEvents(); dropped > 0 {
			fmt.Printf("(%d older events dropped from the bounded log)\n", dropped)
		}
	}
	if rec != nil {
		close(flightStop)
		<-flightDone
		rec.Digest()
		fmt.Println("=== flight ===")
		fmt.Print(rec.RenderText())
		if *flightTrace != "" {
			f, err := os.Create(*flightTrace)
			if err != nil {
				fmt.Fprintf(os.Stderr, "hotbench: %v\n", err)
				os.Exit(1)
			}
			err = rec.WriteChromeTrace(f, 4096)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "hotbench: %v\n", err)
				os.Exit(1)
			}
			fmt.Println("wrote", *flightTrace)
		}
	}
	if *metrics {
		fmt.Println("=== metrics (Prometheus text format) ===")
		if err := reg.WritePrometheus(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "hotbench: %v\n", err)
			os.Exit(1)
		}
	}
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hotbench: %v\n", err)
			os.Exit(1)
		}
		if err := reg.WriteChromeTrace(f); err != nil {
			fmt.Fprintf(os.Stderr, "hotbench: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "hotbench: %v\n", err)
			os.Exit(1)
		}
		if tr := reg.Tracer(); tr != nil && tr.Dropped() > 0 {
			fmt.Fprintf(os.Stderr, "hotbench: trace ring overflowed, oldest %d events dropped\n", tr.Dropped())
		}
		fmt.Println("wrote", *tracePath)
	}
	if *profilePath != "" {
		tr := reg.Tracer()
		if tr.Dropped() > 0 {
			fmt.Fprintf(os.Stderr, "hotbench: profile ring overflowed, oldest %d events dropped; attribution is partial\n", tr.Dropped())
		}
		prof := profile.Analyze(tr.Events())
		writeTo := func(path string, fn func(*os.File) error) {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "hotbench: %v\n", err)
				os.Exit(1)
			}
			err = fn(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "hotbench: %v\n", err)
				os.Exit(1)
			}
			fmt.Println("wrote", path)
		}
		writeTo(*profilePath, func(f *os.File) error { return prof.WriteFolded(f) })
		writeTo(*profilePath+".pb.gz", func(f *os.File) error { return prof.WritePprof(f) })
		fmt.Println("=== cycle attribution (per call site) ===")
		if err := prof.WriteCallTable(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "hotbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Println()
		if err := prof.WriteCategoryTable(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "hotbench: %v\n", err)
			os.Exit(1)
		}
	}
	if *benchJSON != "" {
		f, err := os.Create(*benchJSON)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hotbench: %v\n", err)
			os.Exit(1)
		}
		err = bench.WriteJSONReport(f, reports)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "hotbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("wrote", *benchJSON)
	}
}

// watchLoop redraws the live monitor table on stderr twice a second,
// repainting in place with a cursor-up escape so the experiment output on
// stdout scrolls past it undisturbed.
func watchLoop(m *monitor.Monitor, stop, done chan struct{}) {
	defer close(done)
	t := time.NewTicker(500 * time.Millisecond)
	defer t.Stop()
	prevLines := 0
	render := func() {
		if prevLines > 0 {
			fmt.Fprintf(os.Stderr, "\x1b[%dA\x1b[0J", prevLines)
		}
		s := m.RenderText(8)
		fmt.Fprint(os.Stderr, s)
		prevLines = strings.Count(s, "\n")
	}
	for {
		select {
		case <-stop:
			render()
			return
		case <-t.C:
			render()
		}
	}
}

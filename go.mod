module hotcalls

go 1.22
